// Liveness-table tests: the per-link dead-peer state behind ISSUE 6's
// bounded-retry audit. A give-up under FT is a failure detection — the peer
// is marked dead, every hosted node hears kPeerDown, and later sends to the
// corpse are dropped (net.dead_dropped) instead of retransmitted forever.
#include "net/liveness.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>

#include "common/stats.hpp"
#include "net/network.hpp"

namespace dsm {
namespace {

TEST(LivenessTest, EveryoneStartsAliveWithIncarnationZero) {
  Liveness live(3);
  EXPECT_EQ(live.size(), 3u);
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_TRUE(live.alive(n));
    EXPECT_TRUE(live.worker_live(n));
    EXPECT_EQ(live.incarnation(n), 0u);
  }
  EXPECT_EQ(live.live_count(), 3u);
  EXPECT_EQ(live.live_worker_count(), 3u);
}

TEST(LivenessTest, DeathAndRestartAreSeparateFromWorkerLiveness) {
  Liveness live(3);
  live.mark_worker_dead(1);
  live.mark_dead(1);
  EXPECT_FALSE(live.alive(1));
  EXPECT_FALSE(live.worker_live(1));
  EXPECT_EQ(live.live_count(), 2u);
  EXPECT_EQ(live.live_worker_count(), 2u);

  // A restart rejoins the memory fabric with a fresh incarnation, but the
  // application thread stays gone: barriers must not wait for it again.
  live.mark_restarted(1);
  EXPECT_TRUE(live.alive(1));
  EXPECT_FALSE(live.worker_live(1));
  EXPECT_EQ(live.incarnation(1), 1u);
  EXPECT_EQ(live.live_count(), 3u);
  EXPECT_EQ(live.live_worker_count(), 2u);
}

bool poll_until(const std::function<bool()>& done,
                std::chrono::milliseconds deadline = std::chrono::seconds(5)) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return done();
}

Message make_msg(MsgType type, NodeId src, NodeId dst) {
  Message m;
  m.type = type;
  m.src = src;
  m.dst = dst;
  return m;
}

TEST(LivenessTest, GiveUpUnderFtDeclaresThePeerDead) {
  StatsRegistry stats;
  ReliabilityConfig rel;
  rel.rto_ms = 1;
  rel.rto_max_ms = 8;
  rel.max_retries = 3;
  Network net(3, LinkModel{}, &stats, rel);
  net.set_ft(true);
  net.set_drop_hook([](const Message& m) { return m.dst == 2; });  // severed node

  net.send(make_msg(MsgType::kUpdate, 0, 2));
  ASSERT_TRUE(poll_until([&] { return stats.snapshot().counter("net.gave_up") >= 1; }));
  // The give-up is not just a counter bump: node 2 is now observably dead.
  ASSERT_TRUE(poll_until([&] { return !net.liveness().alive(2); }));
  EXPECT_FALSE(net.liveness().worker_live(2));
  EXPECT_GE(stats.snapshot().counter("net.peer_dead"), 1u);

  // Every hosted node is told, in-band.
  for (NodeId host = 0; host < 3; ++host) {
    const auto msg = net.recv(host);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->type, MsgType::kPeerDown);
  }

  // Later sends to the corpse are dropped immediately, not retried into the
  // void: the fabric stays quiescent.
  net.send(make_msg(MsgType::kUpdate, 1, 2));
  EXPECT_TRUE(poll_until([&] { return stats.snapshot().counter("net.dead_dropped") >= 1; }));
  EXPECT_TRUE(poll_until([&] { return net.idle(); }));

  // Links between live nodes are unaffected.
  net.send(make_msg(MsgType::kConfirm, 1, 0));
  const auto ok = net.recv(0);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->type, MsgType::kConfirm);
}

TEST(LivenessTest, WithoutFtGiveUpStaysACounter) {
  StatsRegistry stats;
  ReliabilityConfig rel;
  rel.rto_ms = 1;
  rel.rto_max_ms = 8;
  rel.max_retries = 2;
  Network net(2, LinkModel{}, &stats, rel);  // FT off: pre-ISSUE-6 behavior
  net.set_drop_hook([](const Message&) { return true; });

  net.send(make_msg(MsgType::kUpdate, 0, 1));
  ASSERT_TRUE(poll_until([&] { return stats.snapshot().counter("net.gave_up") >= 1; }));
  EXPECT_TRUE(net.liveness().alive(1));
  EXPECT_EQ(stats.snapshot().counter("net.peer_dead"), 0u);
}

}  // namespace
}  // namespace dsm
