// The cross-protocol correctness matrix: every protocol × several node
// counts × two page sizes, each running small workloads with exact expected
// results. If a protocol mis-orders, loses, or duplicates a write, these
// checksums break.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string_view>
#include <tuple>

#include "apps/kernels.hpp"
#include "core/dsm.hpp"

#include "../gtest_util.hpp"

namespace dsm {
namespace {

struct MatrixCase {
  ProtocolKind protocol;
  std::size_t n_nodes;
  std::size_t os_pages_per_dsm_page;
};

std::string case_name(const ::testing::TestParamInfo<MatrixCase>& pi) {
  std::string s = to_string(pi.param.protocol);
  for (auto& c : s) {
    if (c == '-') c = '_';
  }
  return s + "_n" + std::to_string(pi.param.n_nodes) + "_p" +
         std::to_string(pi.param.os_pages_per_dsm_page);
}

class ProtocolMatrixTest : public ::testing::TestWithParam<MatrixCase> {
 protected:
  void SetUp() override { TUTORDSM_SKIP_IF_UFFD_UNAVAILABLE(); }

  Config make_config(std::size_t n_pages = 32) const {
    Config cfg;
    cfg.n_nodes = GetParam().n_nodes;
    cfg.page_size = GetParam().os_pages_per_dsm_page * ViewRegion::os_page_size();
    cfg.n_pages = n_pages;
    cfg.protocol = GetParam().protocol;
    // Every matrix case also runs under dsmcheck's strictest mode: the
    // workloads are DRF, so any race report or invariant violation aborts.
    cfg.check_level = CheckLevel::kAssert;
    return cfg;
  }
};

TEST_P(ProtocolMatrixTest, ScatterThenGather) {
  System sys(make_config());
  const std::size_t n = GetParam().n_nodes;
  const std::size_t stride = sys.config().page_size / sizeof(std::uint64_t);
  const auto slots = sys.alloc_page_aligned<std::uint64_t>(n * stride);
  std::uint64_t gathered = 0;
  sys.run([&](Worker& w) {
    if (sys.config().protocol == ProtocolKind::kEc) {
      w.bind_barrier(0, slots, n * stride);
    }
    w.get(slots)[w.id() * stride] = 100 + w.id();
    w.barrier(0);
    if (w.id() == 0) {
      std::uint64_t sum = 0;
      for (std::uint64_t i = 0; i < n; ++i) sum += w.get(slots)[i * stride];
      gathered = sum;
    }
    w.barrier(0);
  });
  EXPECT_EQ(gathered, 100u * n + n * (n - 1) / 2);
}

TEST_P(ProtocolMatrixTest, BroadcastReadAfterBarrier) {
  System sys(make_config());
  const auto data = sys.alloc_page_aligned<std::uint64_t>(512);
  std::atomic<int> errors{0};
  sys.run([&](Worker& w) {
    if (sys.config().protocol == ProtocolKind::kEc) w.bind_barrier(0, data, 512);
    if (w.id() == 0) {
      for (std::uint64_t i = 0; i < 512; ++i) w.get(data)[i] = i * i;
    }
    w.barrier(0);
    for (std::uint64_t i = 0; i < 512; ++i) {
      if (w.get(data)[i] != i * i) errors++;
    }
    w.barrier(0);
  });
  EXPECT_EQ(errors.load(), 0);
}

TEST_P(ProtocolMatrixTest, FalseSharingKernelExactCounts) {
  System sys(make_config());
  apps::FalseSharingParams params;
  params.counters_per_node = 4;
  params.iterations = 6;
  const auto result = apps::run_false_sharing(sys, params);
  EXPECT_EQ(result.checksum,
            static_cast<std::uint64_t>(params.iterations) * params.counters_per_node *
                GetParam().n_nodes);
}

TEST_P(ProtocolMatrixTest, MigratoryCounterExact) {
  System sys(make_config());
  apps::MigratoryParams params;
  params.rounds = 5;
  const auto result = apps::run_migratory(sys, params);
  EXPECT_EQ(result.checksum, 5u * GetParam().n_nodes);
}

TEST_P(ProtocolMatrixTest, ReductionExact) {
  System sys(make_config());
  apps::ReduceParams params;
  params.elements_per_node = 500;
  const auto result = apps::run_reduce(sys, params);
  const std::uint64_t total = 500u * GetParam().n_nodes;
  EXPECT_EQ(result.checksum, total * (total - 1) / 2);
}

TEST_P(ProtocolMatrixTest, PingPongThroughLock) {
  System sys(make_config());
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  std::uint64_t final_value = 0;
  constexpr int kRounds = 30;
  sys.run([&](Worker& w) {
    if (sys.config().protocol == ProtocolKind::kEc) w.bind(0, cell);
    w.barrier(0);
    for (int i = 0; i < kRounds; ++i) {
      w.acquire(0);
      *w.get(cell) += 1;
      w.release(0);
    }
    w.barrier(0);
    if (w.id() == 0) {
      w.acquire(0);
      final_value = *w.get(cell);
      w.release(0);
    }
  });
  EXPECT_EQ(final_value, static_cast<std::uint64_t>(kRounds) * GetParam().n_nodes);
}

TEST_P(ProtocolMatrixTest, TraceInvariantsHold) {
  Config cfg = make_config();
  cfg.trace.enabled = true;
  cfg.trace.buffer_spans = 1 << 16;  // invariants need every span: no drops
  System sys(cfg);
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  std::uint64_t final_value = 0;
  constexpr int kRounds = 5;
  sys.run([&](Worker& w) {
    if (sys.config().protocol == ProtocolKind::kEc) w.bind(0, cell);
    w.barrier(0);
    for (int i = 0; i < kRounds; ++i) {
      w.acquire(0);
      *w.get(cell) += 1;
      w.release(0);
    }
    w.barrier(0);
    if (w.id() == 0) {
      w.acquire(0);
      final_value = *w.get(cell);
      w.release(0);
    }
  });
  EXPECT_EQ(final_value, static_cast<std::uint64_t>(kRounds) * GetParam().n_nodes);

  ASSERT_NE(sys.tracer(), nullptr);
  const Tracer& tracer = *sys.tracer();
  // 1. Balance: every fault/proto/sync span closed; nothing outlives the
  //    drain inside System::run.
  EXPECT_EQ(tracer.open_spans(), 0);
  ASSERT_EQ(tracer.dropped(), 0u);

  // 2. Message lifecycle: every non-loopback send instant has exactly one
  //    matching transit (deliver) span by (src, dst, seq) — the fabric
  //    neither loses nor duplicates under zero chaos.
  std::multiset<std::tuple<NodeId, NodeId, std::uint64_t>> sends, delivers;
  std::size_t fault_spans = 0;
  for (const auto& ev : tracer.all_events()) {
    EXPECT_LE(ev.vstart, ev.vend);
    if (ev.cat == TraceCat::kFault) ++fault_spans;
    if (ev.cat != TraceCat::kNet) continue;
    const std::string_view name(ev.name);
    if (name == "send") {
      const auto dst = static_cast<NodeId>(ev.val0);
      if (dst != ev.node) sends.insert({ev.node, dst, ev.val1});
    } else if (name != "retransmit") {
      const auto src = static_cast<NodeId>(ev.val0);
      if (src != ev.node) delivers.insert({src, ev.node, ev.val1});
    }
  }
  EXPECT_EQ(sends, delivers);
  EXPECT_GT(sends.size(), 0u);

  // 3. Fault coverage: the page-fault protocols record fault spans; EC moves
  //    data with its lock and must record none.
  if (GetParam().protocol == ProtocolKind::kEc) {
    EXPECT_EQ(fault_spans, 0u);
  } else {
    EXPECT_GT(fault_spans, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolMatrixTest,
    ::testing::Values(
        MatrixCase{ProtocolKind::kIvyCentral, 2, 1}, MatrixCase{ProtocolKind::kIvyCentral, 5, 1},
        MatrixCase{ProtocolKind::kIvyFixed, 3, 1}, MatrixCase{ProtocolKind::kIvyFixed, 4, 2},
        MatrixCase{ProtocolKind::kIvyDynamic, 2, 1}, MatrixCase{ProtocolKind::kIvyDynamic, 6, 1},
        MatrixCase{ProtocolKind::kIvyDynamic, 4, 2},
        MatrixCase{ProtocolKind::kErcInvalidate, 2, 1},
        MatrixCase{ProtocolKind::kErcInvalidate, 5, 1},
        MatrixCase{ProtocolKind::kErcUpdate, 3, 1}, MatrixCase{ProtocolKind::kErcUpdate, 4, 2},
        MatrixCase{ProtocolKind::kLrc, 2, 1}, MatrixCase{ProtocolKind::kLrc, 5, 1},
        MatrixCase{ProtocolKind::kLrc, 4, 2},
        MatrixCase{ProtocolKind::kHlrc, 2, 1}, MatrixCase{ProtocolKind::kHlrc, 5, 1},
        MatrixCase{ProtocolKind::kHlrc, 4, 2}, MatrixCase{ProtocolKind::kEc, 3, 1},
        MatrixCase{ProtocolKind::kEc, 5, 1}),
    case_name);

}  // namespace
}  // namespace dsm
