// White-box tests of home-based LRC: homes are current after every release,
// faults are a single round trip to the home, notices invalidate lazily, and
// there are no diff caches to accumulate or collect.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/dsm.hpp"
#include "proto/hlrc.hpp"

#include "../test_util.hpp"

namespace dsm {
namespace {

Config hlrc_config(std::size_t nodes) {
  Config cfg;
  cfg.n_nodes = nodes;
  cfg.n_pages = 16;
  cfg.page_size = ViewRegion::os_page_size();
  cfg.protocol = ProtocolKind::kHlrc;
  return cfg;
}

TEST(Hlrc, ReleaseWaitsForHomeFlush) {
  System sys(hlrc_config(2));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();  // home: node 0
  std::atomic<std::uint64_t> home_view{0};
  std::atomic<bool> released{false};
  sys.run([&](Worker& w) {
    if (w.id() == 1) {
      w.acquire(0);
      *w.get(cell) = 88;
      w.release(0);  // must block until node 0's (home's) copy is updated
      released = true;
    }
    if (w.id() == 0) {
      while (!released.load()) std::this_thread::yield();
      // The home reads its own copy with NO synchronization at all: the
      // eager flush already updated it.
      home_view = test::force_read(w.get(cell));
    }
  });
  EXPECT_EQ(home_view.load(), 88u);
  EXPECT_GE(sys.stats().counter("net.msgs.Update"), 1u);
}

TEST(Hlrc, FaultIsOneRoundTripToHome) {
  System sys(hlrc_config(4));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();  // home: node 0
  std::atomic<bool> ready{false};
  sys.run([&](Worker& w) {
    if (w.id() == 1) {
      w.acquire(0);
      *w.get(cell) = 5;
      w.release(0);
      ready = true;
    }
    if (w.id() == 2) {
      while (!ready.load()) std::this_thread::yield();
      w.acquire(0);
      sys.reset_stats();
      EXPECT_EQ(test::force_read(w.get(cell)), 5u);
      w.release(0);
    }
  });
  const auto snap = sys.stats();
  // One PageRequest + one PageReply; crucially NO per-writer DiffRequests.
  EXPECT_EQ(snap.counter("net.msgs.PageRequest"), 1u);
  EXPECT_EQ(snap.counter("net.msgs.PageReply"), 1u);
  EXPECT_EQ(snap.counter("net.msgs.DiffRequest"), 0u);
}

TEST(Hlrc, NoticesInvalidateOnlyInvolvedPages) {
  System sys(hlrc_config(3));
  const auto a = sys.alloc_page_aligned<std::uint64_t>();  // page 0
  const auto b = sys.alloc_page_aligned<std::uint64_t>();  // page 1
  std::atomic<int> state_a{-1}, state_b{-1};
  std::atomic<bool> ready{false};
  sys.run([&](Worker& w) {
    test::force_read(w.get(a));
    test::force_read(w.get(b));
    w.barrier(0);
    if (w.id() == 1) {
      w.acquire(0);
      *w.get(a) = 1;
      w.release(0);
      ready = true;
    }
    if (w.id() == 2) {
      while (!ready.load()) std::this_thread::yield();
      w.acquire(0);
      state_a = static_cast<int>(sys.table(2).state_of(0));
      state_b = static_cast<int>(sys.table(2).state_of(1));
      w.release(0);
    }
    w.barrier(1);
  });
  EXPECT_EQ(state_a.load(), static_cast<int>(PageState::kInvalid));
  EXPECT_EQ(state_b.load(), static_cast<int>(PageState::kReadOnly));
}

TEST(Hlrc, HomeNeverInvalidatesItsOwnPages) {
  System sys(hlrc_config(2));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();  // home: node 0
  std::atomic<bool> ready{false};
  sys.run([&](Worker& w) {
    if (w.id() == 1) {
      w.acquire(0);
      *w.get(cell) = 3;
      w.release(0);
      ready = true;
    }
    if (w.id() == 0) {
      while (!ready.load()) std::this_thread::yield();
      w.acquire(0);  // grant carries the notice for page 0 — homed HERE
      w.release(0);
    }
  });
  // The home's copy stayed valid (content was updated by the flush).
  EXPECT_NE(sys.table(0).state_of(0), PageState::kInvalid);
}

TEST(Hlrc, ConcurrentWriterSurvivesRefetch) {
  // Node 2 is mid-write (unflushed words) when a notice invalidates its
  // copy; the refetch from the home must preserve node 2's local words.
  System sys(hlrc_config(3));
  const auto arr = sys.alloc_page_aligned<std::uint64_t>(8);
  std::atomic<bool> ready{false};
  std::atomic<std::uint64_t> w2_own{0}, w2_remote{0};
  sys.run([&](Worker& w) {
    test::force_read(w.get(arr));
    w.barrier(0);
    if (w.id() == 2) {
      w.get(arr)[4] = 44;  // unsynchronized concurrent write, disjoint word
    }
    w.barrier(1);  // (arr's writes by 2 flushed here)
    if (w.id() == 1) {
      w.acquire(0);
      w.get(arr)[0] = 11;
      w.release(0);
      ready = true;
    }
    if (w.id() == 2) {
      w.get(arr)[5] = 55;  // open interval: twin exists, words unflushed
      while (!ready.load()) std::this_thread::yield();
      w.acquire(0);  // notice for arr's page → invalidate → refetch on touch
      w2_remote = test::force_read(&w.get(arr)[0]);
      w2_own = test::force_read(&w.get(arr)[5]);
      w.release(0);
    }
    w.barrier(2);
  });
  EXPECT_EQ(w2_remote.load(), 11u);  // saw the lock-protected write
  EXPECT_EQ(w2_own.load(), 55u);     // kept its own unflushed word
}

TEST(Hlrc, ReleaseOfInvalidatedDirtyPageFlushesSafely) {
  // Regression: node 2 dirties a page under lock 1, then acquires lock 0
  // whose grant invalidates that same (still dirty) page, then releases
  // lock 1 WITHOUT touching the page again. The flush must encode the diff
  // of a PROT_NONE page without the encoding itself faulting (which would
  // self-deadlock on the entry lock).
  System sys(hlrc_config(3));
  const auto arr = sys.alloc_page_aligned<std::uint64_t>(8);
  std::atomic<bool> ready{false};
  std::atomic<std::uint64_t> final_value{0};
  sys.run([&](Worker& w) {
    test::force_read(w.get(arr));
    w.barrier(0);
    if (w.id() == 1) {
      w.acquire(0);
      w.get(arr)[0] = 10;
      w.release(0);
      ready = true;
    }
    if (w.id() == 2) {
      w.acquire(1);
      w.get(arr)[4] = 40;  // page dirty under lock 1
      while (!ready.load()) std::this_thread::yield();
      w.acquire(0);  // notice for arr's page → invalidated while dirty
      w.release(0);
      w.release(1);  // flush of the invalid dirty page happens here
    }
    w.barrier(1);
    if (w.id() == 0) {
      w.acquire(1);
      final_value = test::force_read(&w.get(arr)[4]);
      w.release(1);
    }
    w.barrier(1);
  });
  EXPECT_EQ(final_value.load(), 40u);
}

TEST(Hlrc, SequentialPrefetchCutsDemandMisses) {
  Config cfg = hlrc_config(2);
  cfg.prefetch_pages = 2;
  System sys(cfg);
  const std::size_t per_page = cfg.page_size / sizeof(std::uint64_t);
  const auto arr = sys.alloc_page_aligned<std::uint64_t>(12 * per_page);
  std::atomic<std::uint64_t> sum{0};
  sys.run([&](Worker& w) {
    if (w.id() == 0) {
      for (std::size_t p = 0; p < 12; ++p) w.get(arr)[p * per_page] = p + 1;
    }
    w.barrier(0);
    if (w.id() == 1) {
      std::uint64_t s = 0;
      for (std::size_t p = 0; p < 12; ++p) {
        s += test::force_read(&w.get(arr)[p * per_page]);
        // Real-time pause between pages: prefetch hides latency behind
        // per-page work, and without any the async responses race the next
        // demand fault and the miss count is nondeterministic.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      sum = s;
    }
    w.barrier(0);
  });
  EXPECT_EQ(sum.load(), 78u);
  EXPECT_GE(sys.stats().counter("proto.prefetches"), 3u);
  EXPECT_LT(sys.stats().counter("proto.read_faults"), 6u);
}

TEST(Hlrc, BarrierClearsIntervalLogs) {
  System sys(hlrc_config(2));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  sys.run([&](Worker& w) {
    if (w.id() == 1) {
      w.acquire(0);
      *w.get(cell) = 1;
      w.release(0);
    }
    w.barrier(0);
  });
  const auto& p1 = dynamic_cast<HlrcProtocol&>(sys.protocol(1));
  EXPECT_EQ(p1.vclock()[1], 1u);  // the interval happened...
  // ...and a second run of sync traffic shows no replayed metadata: grant
  // payloads after the barrier carry zero records (checked via bytes: a
  // fresh acquire's grant is small). Behavioural check:
  sys.reset_stats();
  std::atomic<std::uint64_t> seen{0};
  sys.run([&](Worker& w) {
    if (w.id() == 0) {
      w.acquire(0);
      seen = test::force_read(w.get(cell));
      w.release(0);
    }
  });
  EXPECT_EQ(seen.load(), 1u);
  EXPECT_EQ(sys.stats().counter("hlrc.notice_invalidations"), 0u);
}

}  // namespace
}  // namespace dsm
