// White-box tests of the IVY family: page states, copyset maintenance,
// ownership migration, and manager behaviour.
#include <gtest/gtest.h>

#include <atomic>

#include "core/dsm.hpp"

#include "../test_util.hpp"

namespace dsm {
namespace {

Config ivy_config(ProtocolKind kind, std::size_t nodes) {
  Config cfg;
  cfg.n_nodes = nodes;
  cfg.n_pages = 16;
  cfg.page_size = ViewRegion::os_page_size();
  cfg.protocol = kind;
  return cfg;
}

class IvyVariantTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(IvyVariantTest, InitialOwnerHasWriteAccess) {
  System sys(ivy_config(GetParam(), 4));
  sys.run([](Worker&) {});  // init_pages runs
  // Page p is homed at p % 4: the home starts ReadWrite, everyone else Invalid.
  for (PageId p = 0; p < 8; ++p) {
    for (NodeId n = 0; n < 4; ++n) {
      const auto expected = (p % 4 == n) ? PageState::kReadWrite : PageState::kInvalid;
      EXPECT_EQ(sys.table(n).state_of(p), expected) << "page " << p << " node " << n;
    }
  }
}

TEST_P(IvyVariantTest, ReadSharingLeavesReadOnlyCopies) {
  System sys(ivy_config(GetParam(), 3));
  const auto cell = sys.alloc_page_aligned<int>();  // page 0, home node 0
  sys.run([&](Worker& w) {
    if (w.id() == 0) *w.get(cell) = 77;
    w.barrier(0);
    EXPECT_EQ(*w.get(cell), 77);  // all nodes read
    w.barrier(0);
  });
  // Everyone holds a copy; nobody has exclusive access anymore.
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(sys.table(n).state_of(0), PageState::kReadOnly) << "node " << n;
  }
}

TEST_P(IvyVariantTest, WriteInvalidatesAllOtherCopies) {
  System sys(ivy_config(GetParam(), 3));
  const auto cell = sys.alloc_page_aligned<int>();
  sys.run([&](Worker& w) {
    test::force_read(w.get(cell));  // replicate everywhere
    w.barrier(0);
    if (w.id() == 2) *w.get(cell) = 5;
    w.barrier(0);
  });
  EXPECT_EQ(sys.table(2).state_of(0), PageState::kReadWrite);
  EXPECT_EQ(sys.table(0).state_of(0), PageState::kInvalid);
  EXPECT_EQ(sys.table(1).state_of(0), PageState::kInvalid);
}

TEST_P(IvyVariantTest, WriteMakesValueVisibleEverywhere) {
  System sys(ivy_config(GetParam(), 4));
  const auto arr = sys.alloc_page_aligned<int>(64);
  std::atomic<int> errors{0};
  sys.run([&](Worker& w) {
    if (w.id() == 1) {
      for (int i = 0; i < 64; ++i) w.get(arr)[i] = i * 3;
    }
    w.barrier(0);
    for (int i = 0; i < 64; ++i) {
      if (w.get(arr)[i] != i * 3) errors++;
    }
    w.barrier(0);
  });
  EXPECT_EQ(errors.load(), 0);
}

TEST_P(IvyVariantTest, OwnershipMigratesToWriter) {
  System sys(ivy_config(GetParam(), 2));
  const auto cell = sys.alloc_page_aligned<int>();  // home node 0
  sys.run([&](Worker& w) {
    if (w.id() == 1) *w.get(cell) = 1;  // node 1 takes ownership
    w.barrier(0);
  });
  EXPECT_EQ(sys.table(1).state_of(0), PageState::kReadWrite);
  EXPECT_EQ(sys.table(0).state_of(0), PageState::kInvalid);
  // A later write by node 1 must be free (no new faults).
  sys.reset_stats();
  sys.run([&](Worker& w) {
    if (w.id() == 1) *w.get(cell) = 2;
    w.barrier(0);
  });
  EXPECT_EQ(sys.stats().counter("proto.write_faults"), 0u);
}

TEST_P(IvyVariantTest, SequentialReadersShareWithoutStealingOwnership) {
  System sys(ivy_config(GetParam(), 4));
  const auto cell = sys.alloc_page_aligned<int>();
  sys.reset_stats();
  sys.run([&](Worker& w) {
    if (w.id() == 0) *w.get(cell) = 9;
    w.barrier(0);
    test::force_read(w.get(cell));
    w.barrier(0);
    // Second read round: all copies cached, zero new read faults.
    test::force_read(w.get(cell));
    w.barrier(0);
  });
  // 3 non-writers fault exactly once each.
  EXPECT_EQ(sys.stats().counter("proto.read_faults"), 3u);
}

INSTANTIATE_TEST_SUITE_P(Variants, IvyVariantTest,
                         ::testing::Values(ProtocolKind::kIvyCentral,
                                           ProtocolKind::kIvyFixed,
                                           ProtocolKind::kIvyDynamic),
                         [](const ::testing::TestParamInfo<ProtocolKind>& pi) {
                           std::string s = to_string(pi.param);
                           for (auto& c : s) {
                             if (c == '-') c = '_';
                           }
                           return s;
                         });

TEST_P(IvyVariantTest, SequentialPrefetchCutsDemandMisses) {
  Config cfg = ivy_config(GetParam(), 2);
  cfg.n_pages = 16;
  cfg.prefetch_pages = 2;
  System sys(cfg);
  const std::size_t per_page = cfg.page_size / sizeof(std::uint64_t);
  const auto arr = sys.alloc_page_aligned<std::uint64_t>(12 * per_page);
  std::atomic<std::uint64_t> sum{0};
  sys.run([&](Worker& w) {
    if (w.id() == 0) {
      for (std::size_t p = 0; p < 12; ++p) w.get(arr)[p * per_page] = p + 1;
    }
    w.barrier(0);
    if (w.id() == 1) {
      // Sequential scan of 12 pages; with depth-2 prefetch most are already
      // in flight or resident when the scan reaches them.
      std::uint64_t s = 0;
      for (std::size_t p = 0; p < 12; ++p) s += test::force_read(&w.get(arr)[p * per_page]);
      sum = s;
    }
    w.barrier(0);
  });
  EXPECT_EQ(sum.load(), 78u);
  const auto snap = sys.stats();
  EXPECT_GE(snap.counter("proto.prefetches"), 4u);
  // Demand transactions started by the scanner: strictly fewer than 12.
  EXPECT_LT(snap.counter("proto.read_faults"), 12u);
}

TEST(IvyDynamic, ForwardingChainsResolveAndCompress) {
  System sys(ivy_config(ProtocolKind::kIvyDynamic, 4));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  // Pass ownership around the ring twice; probable-owner chains must chase.
  sys.run([&](Worker& w) {
    for (int round = 0; round < 2; ++round) {
      for (std::uint32_t turn = 0; turn < 4; ++turn) {
        if (turn == w.id()) *w.get(cell) += 1;
        w.barrier(0);
      }
    }
    if (w.id() == 0) { EXPECT_EQ(*w.get(cell), 8u); }
    w.barrier(0);
  });
  EXPECT_GT(sys.stats().counter("ivy.forwards"), 0u);
}

TEST(IvyCentral, AllRequestsGoThroughNodeZero) {
  System sys(ivy_config(ProtocolKind::kIvyCentral, 4));
  // Touch pages homed at nodes 1..3; every miss still messages node 0 first.
  const auto arr = sys.alloc_page_aligned<int>(
      3 * sys.config().page_size / sizeof(int));
  sys.reset_stats();
  sys.run([&](Worker& w) {
    if (w.id() == 3) {
      const std::size_t per_page = sys.config().page_size / sizeof(int);
      for (std::size_t p = 0; p < 3; ++p) test::force_read(&w.get(arr)[p * per_page]);
    }
    w.barrier(0);
  });
  const auto snap = sys.stats();
  EXPECT_EQ(snap.counter("proto.read_faults"), 3u);
  EXPECT_EQ(snap.counter("net.msgs.ReadRequest"), 3u);
  EXPECT_EQ(snap.counter("net.msgs.ReadForward"), 3u);
  EXPECT_EQ(snap.counter("net.msgs.Confirm"), 3u);
}

TEST(IvyDynamic, LateReadReplyDoesNotResurrectInvalidatedCopy) {
  // Regression for the in-flight-reply race: reader R is added to the
  // owner's copyset and the reply is sent; a writer then takes ownership
  // and invalidates R before the reply lands. R must discard the stale
  // reply (it already acknowledged the invalidation), or it keeps a
  // read-only copy the writer believes is gone — a silent SC violation
  // that corrupted Gaussian elimination at 16 nodes.
  Config cfg = ivy_config(ProtocolKind::kIvyDynamic, 16);
  cfg.n_pages = 32;
  System sys(cfg);
  const auto page_words = cfg.page_size / sizeof(std::uint64_t);
  const auto data = sys.alloc_page_aligned<std::uint64_t>(page_words);
  std::atomic<std::uint64_t> stale_reads{0};
  sys.run([&](Worker& w) {
    // Rounds of: writer bumps a version word; everyone else reads it while
    // the next writer is already lining up — a read/invalidate storm.
    for (std::uint64_t round = 1; round <= 12; ++round) {
      const NodeId writer = static_cast<NodeId>(round % w.n_nodes());
      if (w.id() == writer) *w.get(data) = round;
      w.barrier(0);
      if (test::force_read(w.get(data)) != round) stale_reads++;
      w.barrier(1);
    }
  });
  EXPECT_EQ(stale_reads.load(), 0u);
}

TEST(IvyManager, ConcurrentWritersSerializeCorrectly) {
  // All nodes hammer one page without locks. Not DRF, but IVY is
  // sequentially consistent: total increments ≤ actual value is not
  // guaranteed (lost updates are possible semantically: read-modify-write is
  // not atomic) — what IS guaranteed is no crash, no protocol wedge, and the
  // final state is some node's last write. We verify liveness + single
  // final owner.
  System sys(ivy_config(ProtocolKind::kIvyFixed, 4));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  sys.run([&](Worker& w) {
    for (int i = 0; i < 25; ++i) *w.get(cell) = w.id() * 1000u + static_cast<unsigned>(i);
    w.barrier(0);
  });
  int owners = 0;
  for (NodeId n = 0; n < 4; ++n) {
    if (sys.table(n).state_of(0) == PageState::kReadWrite) ++owners;
  }
  EXPECT_EQ(owners, 1);
}

}  // namespace
}  // namespace dsm
