// Randomized data-race-free program generator: K counters, each guarded by
// its own lock, hammered by every node in random order, with barrier rounds
// in between. A host-side shadow array (updated while holding the same DSM
// lock) is the oracle: any protocol that loses, duplicates, or mis-orders a
// write trips the comparison. This is the suite's broadest property test —
// one schedule-dependent consistency bug anywhere in the stack shows up
// here as a counter mismatch.
#include <gtest/gtest.h>

#include <atomic>

#include "common/rng.hpp"
#include "core/dsm.hpp"

#include "../gtest_util.hpp"
#include "../test_util.hpp"

namespace dsm {
namespace {

struct DrfCase {
  ProtocolKind protocol;
  std::size_t n_nodes;
  bool shared_pages;  ///< counters packed onto shared pages (false sharing)
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<DrfCase>& pi) {
  std::string s = to_string(pi.param.protocol);
  for (auto& c : s) {
    if (c == '-') c = '_';
  }
  return s + "_n" + std::to_string(pi.param.n_nodes) +
         (pi.param.shared_pages ? "_packed" : "_padded") + "_s" +
         std::to_string(pi.param.seed);
}

class RandomDrfTest : public ::testing::TestWithParam<DrfCase> {
 protected:
  void SetUp() override { TUTORDSM_SKIP_IF_UFFD_UNAVAILABLE(); }
};

// The generated program is DRF by construction, so it doubles as a negative
// control for dsmcheck: every case runs once plain and once under
// check_level=assert, where a single false race report or invariant
// violation would abort the whole binary.
void run_drf_case(const DrfCase& param, CheckLevel check_level,
                  bool batched_wire = false) {
  constexpr std::size_t kVars = 6;
  constexpr int kRounds = 4;
  constexpr int kOpsPerRound = 12;

  Config cfg;
  cfg.n_nodes = param.n_nodes;
  cfg.page_size = ViewRegion::os_page_size();
  cfg.n_pages = 32;
  cfg.protocol = param.protocol;
  cfg.check_level = check_level;
  if (batched_wire) {
    cfg.wire.batching = true;
    cfg.wire.piggyback_acks = true;
    cfg.wire.compress_pages = true;
    cfg.wire.compress_diffs = true;
  }
  System sys(cfg);

  // Layout: packed = all counters on one page (maximum interference);
  // padded = one page per counter.
  std::vector<Shared<std::uint64_t>> vars(kVars);
  if (param.shared_pages) {
    const auto block = sys.alloc_page_aligned<std::uint64_t>(kVars);
    for (std::size_t v = 0; v < kVars; ++v) vars[v] = block + v;
  } else {
    for (std::size_t v = 0; v < kVars; ++v) {
      vars[v] = sys.alloc_page_aligned<std::uint64_t>();
    }
  }

  std::array<std::atomic<std::uint64_t>, kVars> shadow = {};
  std::atomic<std::uint64_t> mismatches{0};

  sys.run([&](Worker& w) {
    if (cfg.protocol == ProtocolKind::kEc) {
      for (std::size_t v = 0; v < kVars; ++v) {
        w.bind(static_cast<LockId>(v), vars[v]);
      }
    }
    w.barrier(0);
    SplitMix64 rng(param.seed * 1000003 + w.id());

    for (int round = 0; round < kRounds; ++round) {
      for (int op = 0; op < kOpsPerRound; ++op) {
        const auto v = static_cast<std::size_t>(rng.next_below(kVars));
        const auto lock = static_cast<LockId>(v);
        w.acquire(lock);
        // The DSM counter and the host shadow must agree while the lock is
        // held — this is the consistency oracle.
        const std::uint64_t dsm_value = test::force_read(w.get(vars[v]));
        const std::uint64_t shadow_value = shadow[v].load(std::memory_order_relaxed);
        if (dsm_value != shadow_value) mismatches++;
        *w.get(vars[v]) = dsm_value + 1;
        shadow[v].store(shadow_value + 1, std::memory_order_relaxed);
        w.compute(rng.next_below(500));
        w.release(lock);
      }
      w.barrier(0);
      // Post-barrier, re-check every counter under its lock (EC requires
      // the lock; for the others it also exercises acquire-path metadata).
      for (std::size_t v = 0; v < kVars; ++v) {
        w.acquire(static_cast<LockId>(v));
        if (test::force_read(w.get(vars[v])) != shadow[v].load()) mismatches++;
        w.release(static_cast<LockId>(v));
      }
      w.barrier(1);
    }
  });

  EXPECT_EQ(mismatches.load(), 0u);
  std::uint64_t total = 0;
  for (const auto& s : shadow) total += s.load();
  EXPECT_EQ(total, param.n_nodes * kRounds * kOpsPerRound);

  if (check_level != CheckLevel::kOff) {
    ASSERT_NE(sys.checker(), nullptr);
    EXPECT_EQ(sys.checker()->violations(), 0u);
    // The detector saw real traffic (EC never faults — its pages are
    // writable everywhere — so it contributes no observed accesses).
    if (param.protocol != ProtocolKind::kEc) {
      EXPECT_GT(sys.stats().counter("check.accesses"), 0u);
    }
  } else {
    EXPECT_EQ(sys.checker(), nullptr);
    EXPECT_EQ(sys.stats().counter("check.accesses"), 0u);
  }
}

TEST_P(RandomDrfTest, LockProtectedCountersMatchShadow) {
  run_drf_case(GetParam(), CheckLevel::kOff);
}

TEST_P(RandomDrfTest, StaysSilentUnderCheckAssert) {
  run_drf_case(GetParam(), CheckLevel::kAssert);
}

TEST_P(RandomDrfTest, BatchedWireStaysExactUnderCheckAssert) {
  // The full wire-optimisation stack (coalescing + piggybacked acks +
  // compression) under the checker: batching must never reorder, drop, or
  // corrupt — any slip shows as a shadow mismatch or a dsmcheck abort.
  run_drf_case(GetParam(), CheckLevel::kAssert, /*batched_wire=*/true);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomDrfTest,
    ::testing::Values(
        DrfCase{ProtocolKind::kIvyCentral, 4, true, 1},
        DrfCase{ProtocolKind::kIvyFixed, 4, true, 2},
        DrfCase{ProtocolKind::kIvyDynamic, 4, true, 3},
        DrfCase{ProtocolKind::kIvyDynamic, 8, true, 4},
        DrfCase{ProtocolKind::kIvyDynamic, 8, false, 5},
        DrfCase{ProtocolKind::kErcInvalidate, 4, true, 6},
        DrfCase{ProtocolKind::kErcInvalidate, 8, true, 7},
        DrfCase{ProtocolKind::kErcUpdate, 4, true, 8},
        DrfCase{ProtocolKind::kErcUpdate, 8, false, 9},
        DrfCase{ProtocolKind::kLrc, 4, true, 10},
        DrfCase{ProtocolKind::kLrc, 8, true, 11},
        DrfCase{ProtocolKind::kLrc, 8, false, 12},
        DrfCase{ProtocolKind::kHlrc, 4, true, 15},
        DrfCase{ProtocolKind::kHlrc, 8, false, 16},
        DrfCase{ProtocolKind::kEc, 4, true, 13},
        DrfCase{ProtocolKind::kEc, 8, true, 14}),
    case_name);

}  // namespace
}  // namespace dsm
