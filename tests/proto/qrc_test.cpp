// Quorum-replicated RC (QRC) tests: replica-group membership, baseline
// coherence across replication factors, and the tentpole crash guarantees —
// a seeded kill mid-run loses no acknowledged write, the next live group
// member takes over a dead primary's pages, and a killed-and-restarted
// member resyncs through kReplRecover before serving again.
#include <gtest/gtest.h>

#include <atomic>

#include "core/dsm.hpp"
#include "proto/qrc.hpp"

#include "../gtest_util.hpp"
#include "../test_util.hpp"

namespace dsm {
namespace {

Config qrc_config(std::size_t nodes, std::size_t repl) {
  Config cfg;
  cfg.n_nodes = nodes;
  cfg.n_pages = 16;
  cfg.page_size = ViewRegion::os_page_size();
  cfg.protocol = ProtocolKind::kQrc;
  cfg.ft.enabled = true;
  cfg.ft.replication = repl;
  cfg.check_level = CheckLevel::kAssert;
  return cfg;
}

TEST(QrcTest, ReplicaGroupsAreConsecutiveFromTheHome) {
  System sys(qrc_config(4, 2));
  const auto& qrc = dynamic_cast<const QrcProtocol&>(sys.protocol(0));
  // Page 1 is homed at node 1: group {1, 2}.
  EXPECT_TRUE(qrc.in_group(1, 1));
  EXPECT_TRUE(qrc.in_group(1, 2));
  EXPECT_FALSE(qrc.in_group(1, 3));
  EXPECT_FALSE(qrc.in_group(1, 0));
  // Groups wrap: page 3's group is {3, 0}.
  EXPECT_TRUE(qrc.in_group(3, 3));
  EXPECT_TRUE(qrc.in_group(3, 0));
  // With everyone alive the primary is the home itself.
  EXPECT_EQ(qrc.primary_of(1), 1u);
  EXPECT_EQ(qrc.primary_of(3), 3u);
}

class QrcReplicationTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override { TUTORDSM_SKIP_IF_UFFD_UNAVAILABLE(); }
};

TEST_P(QrcReplicationTest, LockedCounterIsCoherent) {
  System sys(qrc_config(3, GetParam()));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  std::atomic<std::uint64_t> observed{0};
  sys.run([&](Worker& w) {
    for (int round = 0; round < 4; ++round) {
      w.acquire(0);
      *w.get(cell) += 1;
      w.release(0);
    }
    w.barrier(0);
    if (w.id() == 0) observed = test::force_read(w.get(cell));
    w.barrier(0);
  });
  EXPECT_EQ(observed.load(), 12u);
  EXPECT_GE(sys.stats().counter("qrc.flushes"), 1u);
}

INSTANTIATE_TEST_SUITE_P(Factors, QrcReplicationTest, ::testing::Values(1, 2, 3),
                         [](const ::testing::TestParamInfo<std::size_t>& pi) {
                           return "r" + std::to_string(pi.param);
                         });

// The acceptance-criteria scenario: replication 3, a seeded kill of one
// replica mid-run. Every write acknowledged before the crash must survive
// (the checker runs at kAssert and would abort on a lost update), the
// surviving fleet must complete, and the next live member must take over
// primaryship of the dead node's pages.
TEST(QrcFtTest, SeededKillLosesNoAcknowledgedWrite) {
  TUTORDSM_SKIP_IF_UFFD_UNAVAILABLE();
  Config cfg = qrc_config(4, 3);
  cfg.ft.faults = {{/*node=*/2, /*kill_at=*/1'000'000'000, /*restart=*/false}};
  System sys(cfg);
  const auto counter = sys.alloc_page_aligned<std::uint64_t>();  // page 0: group {0,1,2}
  (void)sys.alloc_page_aligned<std::uint64_t>();                 // page 1 (unused)
  const auto orphan = sys.alloc_page_aligned<std::uint64_t>();   // page 2: homed at the victim
  std::atomic<std::uint64_t> observed{0};
  std::atomic<std::uint64_t> orphan_observed{0};
  sys.run([&](Worker& w) {
    w.acquire(0);
    *w.get(counter) += 1;
    w.release(0);  // acked against the {0,1,2} quorum before anyone can die
    // The victim's virtual clock jumps past its kill_at deadline here; it
    // dies at this boundary, after its increment was acknowledged.
    if (w.id() == 2) w.compute(1'000'000'000);
    w.barrier(0);  // completes over the surviving workers only
    if (w.id() == 0) observed = test::force_read(w.get(counter));
    // Page 2's home is dead; node 3 (next live group member) must serve it.
    if (w.id() == 1) {
      w.acquire(1);
      *w.get(orphan) = 77;
      w.release(1);
    }
    w.barrier(1);
    if (w.id() == 3) orphan_observed = test::force_read(w.get(orphan));
    w.barrier(2);
  });
  EXPECT_EQ(observed.load(), 4u);  // all four increments, including the victim's
  EXPECT_EQ(orphan_observed.load(), 77u);
  const auto snap = sys.stats();
  EXPECT_EQ(snap.counter("ft.kills"), 1u);
  EXPECT_EQ(snap.counter("ft.restarts"), 0u);
  EXPECT_GE(snap.counter("qrc.takeovers"), 1u);
}

TEST(QrcFtTest, KilledReplicaRestartsAndResyncs) {
  TUTORDSM_SKIP_IF_UFFD_UNAVAILABLE();
  Config cfg = qrc_config(3, 3);
  cfg.ft.faults = {{/*node=*/1, /*kill_at=*/1'000'000'000, /*restart=*/true}};
  System sys(cfg);
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  std::atomic<std::uint64_t> observed{0};
  sys.run([&](Worker& w) {
    w.acquire(0);
    *w.get(cell) += 1;
    w.release(0);
    if (w.id() == 1) w.compute(1'000'000'000);  // dies, then rejoins the fabric
    w.barrier(0);
    // Write traffic after the restart: the resynced replica must accept
    // quorum syncs again without wedging the writer.
    if (w.id() == 2) {
      w.acquire(0);
      *w.get(cell) += 10;
      w.release(0);
    }
    w.barrier(1);
    if (w.id() == 0) observed = test::force_read(w.get(cell));
    w.barrier(2);
  });
  EXPECT_EQ(observed.load(), 13u);
  const auto snap = sys.stats();
  EXPECT_EQ(snap.counter("ft.kills"), 1u);
  EXPECT_EQ(snap.counter("ft.restarts"), 1u);
  EXPECT_GE(snap.counter("qrc.recoveries"), 1u);
}

}  // namespace
}  // namespace dsm
