// White-box tests of eager release consistency: multiple-writer merging,
// release-blocking flushes, home authority, invalidate vs update modes.
#include <gtest/gtest.h>

#include <atomic>

#include "core/dsm.hpp"
#include "proto/erc.hpp"

#include "../test_util.hpp"

namespace dsm {
namespace {

Config erc_config(ProtocolKind mode, std::size_t nodes) {
  Config cfg;
  cfg.n_nodes = nodes;
  cfg.n_pages = 16;
  cfg.page_size = ViewRegion::os_page_size();
  cfg.protocol = mode;
  return cfg;
}

class ErcModeTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ErcModeTest, ConcurrentWritersToOnePageMerge) {
  System sys(erc_config(GetParam(), 4));
  const auto arr = sys.alloc_page_aligned<std::uint64_t>(16);
  std::atomic<int> errors{0};
  sys.run([&](Worker& w) {
    // Four nodes write disjoint words of the SAME page concurrently, with no
    // lock — legal under (e)RC as long as a barrier separates writes from
    // reads. Invalidate-mode single-writer protocols cannot do this.
    for (int k = 0; k < 4; ++k) {
      w.get(arr)[w.id() * 4 + static_cast<unsigned>(k)] = w.id() * 10 + static_cast<unsigned>(k);
    }
    w.barrier(0);
    for (std::uint64_t n = 0; n < 4; ++n) {
      for (std::uint64_t k = 0; k < 4; ++k) {
        if (w.get(arr)[n * 4 + k] != n * 10 + k) errors++;
      }
    }
    w.barrier(0);
  });
  EXPECT_EQ(errors.load(), 0);
}

TEST_P(ErcModeTest, LocalWriteUpgradeCostsNoMessages) {
  System sys(erc_config(GetParam(), 2));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  sys.run([&](Worker& w) {
    test::force_read(w.get(cell));  // both nodes get read copies
    w.barrier(0);
  });
  sys.reset_stats();
  sys.run([&](Worker& w) {
    if (w.id() == 1) *w.get(cell) = 5;  // write upgrade: twin + mprotect, local
  });
  EXPECT_EQ(sys.stats().counter("net.msgs"), 0u);
  EXPECT_EQ(sys.stats().counter("proto.write_faults"), 1u);
}

TEST_P(ErcModeTest, ReleaseFlushesToHome) {
  System sys(erc_config(GetParam(), 2));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();  // home node 0
  sys.run([&](Worker& w) {
    if (w.id() == 1) {
      w.acquire(0);
      *w.get(cell) = 99;
      w.release(0);  // must push the diff home before returning
    }
    w.barrier(0);
    // Node 0 reads its OWN copy — the home is always current after a release.
    if (w.id() == 0) { EXPECT_EQ(test::force_read(w.get(cell)), 99u); }
    w.barrier(0);
  });
  EXPECT_GE(sys.stats().counter("net.msgs.Update"), 1u);
}

TEST_P(ErcModeTest, DirtyPagesFlushOnlyOnce) {
  System sys(erc_config(GetParam(), 2));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  sys.run([&](Worker& w) {
    if (w.id() == 1) {
      w.acquire(0);
      for (int i = 0; i < 100; ++i) *w.get(cell) += 1;  // many writes, one page
      w.release(0);
    }
    w.barrier(0);
  });
  auto& erc = dynamic_cast<ErcProtocol&>(sys.protocol(1));
  // One release + one barrier with nothing further dirty ⇒ exactly 1 flush.
  EXPECT_EQ(erc.flushes(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Modes, ErcModeTest,
                         ::testing::Values(ProtocolKind::kErcInvalidate,
                                           ProtocolKind::kErcUpdate),
                         [](const ::testing::TestParamInfo<ProtocolKind>& pi) {
                           return pi.param == ProtocolKind::kErcInvalidate
                                      ? std::string("invalidate")
                                      : std::string("update");
                         });

TEST(ErcInvalidate, ReleaseInvalidatesOtherReaders) {
  System sys(erc_config(ProtocolKind::kErcInvalidate, 3));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();  // home node 0
  sys.run([&](Worker& w) {
    test::force_read(w.get(cell));  // everyone holds a read copy
    w.barrier(0);
    if (w.id() == 1) {
      w.acquire(0);
      *w.get(cell) = 1;
      w.release(0);
    }
    w.barrier(1);
  });
  // Node 2's copy must be gone (it was neither writer nor home).
  EXPECT_EQ(sys.table(2).state_of(0), PageState::kInvalid);
  EXPECT_GE(sys.stats().counter("net.msgs.Invalidate"), 1u);
}

TEST(ErcUpdate, ReleaseUpdatesOtherReadersInPlace) {
  System sys(erc_config(ProtocolKind::kErcUpdate, 3));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  std::atomic<std::uint64_t> node2_value{0};
  sys.run([&](Worker& w) {
    test::force_read(w.get(cell));
    w.barrier(0);
    if (w.id() == 1) {
      w.acquire(0);
      *w.get(cell) = 42;
      w.release(0);
    }
    w.barrier(1);
    if (w.id() == 2) node2_value = test::force_read(w.get(cell));
    w.barrier(1);
  });
  // Node 2 kept its copy — refreshed, not destroyed.
  EXPECT_EQ(sys.table(2).state_of(0), PageState::kReadOnly);
  EXPECT_EQ(node2_value.load(), 42u);
  EXPECT_EQ(sys.stats().counter("net.msgs.Invalidate"), 0u);
}

TEST(ErcUpdate, UpdateModeSendsNoFaultsAfterBarrierReads) {
  // Under update mode, a stable readership never re-faults: updates arrive
  // in place. This is the update-vs-invalidate trade the tutorial teaches.
  System sys(erc_config(ProtocolKind::kErcUpdate, 3));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  sys.run([&](Worker& w) {
    test::force_read(w.get(cell));
    w.barrier(0);
  });
  sys.reset_stats();
  std::atomic<int> errors{0};
  sys.run([&](Worker& w) {
    for (int round = 1; round <= 5; ++round) {
      if (w.id() == 0) {
        w.acquire(0);
        *w.get(cell) = static_cast<std::uint64_t>(round);
        w.release(0);
      }
      w.barrier(0);
      if (test::force_read(w.get(cell)) != static_cast<std::uint64_t>(round)) errors++;
      w.barrier(1);
    }
  });
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(sys.stats().counter("proto.read_faults"), 0u);
}

TEST(ErcInvalidate, DirtyKeepersReceiveTheReleasedWords) {
  // Two concurrent writers on one page (disjoint words). When A releases,
  // B's dirty copy cannot be destroyed — but B must still observe A's
  // words at its own next synchronization. The home pushes the diff to
  // exactly such "keepers" (counted by erc.keeper_updates).
  System sys(erc_config(ProtocolKind::kErcInvalidate, 3));
  const auto arr = sys.alloc_page_aligned<std::uint64_t>(8);
  std::atomic<std::uint64_t> b_saw_a{0};
  std::atomic<bool> a_done{false};
  std::atomic<bool> b_wrote{false};
  sys.run([&](Worker& w) {
    test::force_read(w.get(arr));
    w.barrier(0);
    if (w.id() == 1) {  // writer A
      while (!b_wrote.load()) std::this_thread::yield();  // B is dirty first
      w.acquire(0);
      w.get(arr)[0] = 100;
      w.release(0);
      a_done = true;
    }
    if (w.id() == 2) {  // concurrent writer B: dirty when A's release lands
      w.get(arr)[4] = 200;  // unsynchronized write, disjoint word
      b_wrote = true;
      while (!a_done.load()) std::this_thread::yield();
      // B reads A's word from its KEPT copy without any fault: the keeper
      // update already delivered it.
      b_saw_a = test::force_read(&w.get(arr)[0]);
    }
    w.barrier(1);
  });
  EXPECT_EQ(b_saw_a.load(), 100u);
  EXPECT_GE(sys.stats().counter("erc.keeper_updates"), 1u);
}

TEST(Erc, HomeOwnWritesAreDiffedToo) {
  // The home writing its own page must still trap, twin, and propagate.
  System sys(erc_config(ProtocolKind::kErcUpdate, 2));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();  // home node 0
  std::atomic<std::uint64_t> seen{0};
  sys.run([&](Worker& w) {
    test::force_read(w.get(cell));
    w.barrier(0);
    if (w.id() == 0) {
      w.acquire(0);
      *w.get(cell) = 7;
      w.release(0);
    }
    w.barrier(1);
    if (w.id() == 1) seen = test::force_read(w.get(cell));
    w.barrier(1);
  });
  EXPECT_EQ(seen.load(), 7u);
}

}  // namespace
}  // namespace dsm
