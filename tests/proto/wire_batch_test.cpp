// Wire-batching protocol suite: with coalescing, piggybacked acks, and
// payload compression all on, every protocol must stay exact — on a clean
// fabric with dsmcheck asserting, and over a lossy/duplicating/reordering
// one. Envelopes are deduped, reordered, and retransmitted as units, and
// the checker verifies each lands exactly at its link's expected seq.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "apps/kernels.hpp"
#include "core/dsm.hpp"

#include "../gtest_util.hpp"

namespace dsm {
namespace {

std::string case_name(const ::testing::TestParamInfo<ProtocolKind>& pi) {
  std::string s = to_string(pi.param);
  for (auto& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

WireConfig wire_all_on() {
  WireConfig wire;
  wire.batching = true;
  wire.piggyback_acks = true;
  wire.compress_pages = true;
  wire.compress_diffs = true;
  return wire;
}

class WireBatchProtocolTest : public ::testing::TestWithParam<ProtocolKind> {
 protected:
  void SetUp() override { TUTORDSM_SKIP_IF_UFFD_UNAVAILABLE(); }

  Config make_config(bool chaos) const {
    Config cfg;
    cfg.n_nodes = 3;
    cfg.n_pages = 32;
    cfg.protocol = GetParam();
    cfg.wire = wire_all_on();
    cfg.watchdog_ms = 60'000;
    cfg.check_level = CheckLevel::kAssert;
    if (chaos) {
      cfg.reliability.rto_ms = 2;
      cfg.reliability.rto_max_ms = 32;
      cfg.chaos.enabled = true;
      cfg.chaos.seed = 1992;
      cfg.chaos.drop_probability = 0.05;
      cfg.chaos.duplicate_probability = 0.02;
      cfg.chaos.delay_probability = 0.05;
      cfg.chaos.delay_max_us = 300;
    }
    return cfg;
  }
};

TEST_P(WireBatchProtocolTest, MigratoryCounterExactWithBatching) {
  System sys(make_config(/*chaos=*/false));
  apps::MigratoryParams params;
  params.rounds = 5;
  const auto result = apps::run_migratory(sys, params);
  EXPECT_EQ(result.checksum, 5u * sys.config().n_nodes);
}

TEST_P(WireBatchProtocolTest, FalseSharingExactWithBatching) {
  // Multi-writer flushes are where release fan-out batching engages: the
  // checksum and dsmcheck's order/SWMR assertions must both hold.
  System sys(make_config(/*chaos=*/false));
  apps::FalseSharingParams params;
  params.counters_per_node = 4;
  params.iterations = 5;
  const auto result = apps::run_false_sharing(sys, params);
  EXPECT_EQ(result.checksum, 5u * 4u * sys.config().n_nodes);
}

TEST_P(WireBatchProtocolTest, MigratoryCounterExactUnderLossWithBatching) {
  System sys(make_config(/*chaos=*/true));
  apps::MigratoryParams params;
  params.rounds = 5;
  const auto result = apps::run_migratory(sys, params);
  EXPECT_EQ(result.checksum, 5u * sys.config().n_nodes);
}

TEST_P(WireBatchProtocolTest, ReductionExactUnderLossWithBatching) {
  System sys(make_config(/*chaos=*/true));
  apps::ReduceParams params;
  params.elements_per_node = 300;
  const auto result = apps::run_reduce(sys, params);
  const std::uint64_t total = 300u * sys.config().n_nodes;
  EXPECT_EQ(result.checksum, total * (total - 1) / 2);
}

TEST_P(WireBatchProtocolTest, FalseSharingExactUnderLossWithBatching) {
  System sys(make_config(/*chaos=*/true));
  apps::FalseSharingParams params;
  params.counters_per_node = 4;
  params.iterations = 5;
  const auto result = apps::run_false_sharing(sys, params);
  EXPECT_EQ(result.checksum, 5u * 4u * sys.config().n_nodes);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, WireBatchProtocolTest,
    ::testing::Values(ProtocolKind::kIvyCentral, ProtocolKind::kIvyFixed,
                      ProtocolKind::kIvyDynamic, ProtocolKind::kErcInvalidate,
                      ProtocolKind::kErcUpdate, ProtocolKind::kLrc,
                      ProtocolKind::kEc, ProtocolKind::kHlrc),
    case_name);

TEST(WireBatchStatsTest, ErcReleaseFanOutActuallyBatches) {
  // The workload batching exists for: one writer dirties many pages homed
  // on other nodes, then releases — the flush must coalesce the same-home
  // updates into envelopes and piggyback the resulting acks.
  Config cfg;
  cfg.n_nodes = 4;
  cfg.n_pages = 32;
  cfg.protocol = ProtocolKind::kErcUpdate;
  cfg.wire = wire_all_on();
  cfg.check_level = CheckLevel::kAssert;
  cfg.watchdog_ms = 60'000;
  System sys(cfg);
  const std::size_t wpp = cfg.page_size / sizeof(std::uint64_t);
  const std::size_t kPages = 16;
  const auto data = sys.alloc_page_aligned<std::uint64_t>(kPages * wpp);
  sys.run([&](Worker& w) {
    w.barrier(0);
    for (int epoch = 0; epoch < 3; ++epoch) {
      for (std::size_t p = 0; p < kPages; ++p) {
        w.get(data)[p * wpp + w.id()] += 1;
      }
      w.barrier(0);
    }
  });
  const auto snap = sys.stats();
  EXPECT_GE(snap.counter("net.batches"), 1u);
  EXPECT_GE(snap.counter("net.batched_msgs"), 2u * snap.counter("net.batches"));
  EXPECT_GE(snap.counter("net.acks_piggybacked"), 1u);
  EXPECT_GE(snap.counter("net.bytes_saved"), 1u);
  // Physical datagrams must come in well under the per-message count.
  EXPECT_LT(snap.counter("net.datagrams"), snap.counter("net.msgs"));
}

TEST(WireBatchStatsTest, CompressionAloneKeepsResultsExact) {
  // Compression without batching: the codec negotiation must be transparent
  // at every page/diff site (IVY full pages, ERC XOR diffs, fan-out).
  for (const auto protocol :
       {ProtocolKind::kIvyDynamic, ProtocolKind::kErcUpdate, ProtocolKind::kHlrc}) {
    Config cfg;
    cfg.n_nodes = 3;
    cfg.n_pages = 32;
    cfg.protocol = protocol;
    cfg.wire.compress_pages = true;
    cfg.wire.compress_diffs = true;
    cfg.check_level = CheckLevel::kAssert;
    cfg.watchdog_ms = 60'000;
    System sys(cfg);
    apps::MigratoryParams params;
    params.rounds = 5;
    const auto result = apps::run_migratory(sys, params);
    EXPECT_EQ(result.checksum, 5u * cfg.n_nodes) << to_string(protocol);
    EXPECT_GE(sys.stats().counter("net.bytes_saved"), 1u) << to_string(protocol);
  }
}

}  // namespace
}  // namespace dsm
