// Memory-model litmus tests. The IVY family claims sequential consistency:
// the classic message-passing and store-buffering shapes must never show
// their forbidden outcomes, even with no locks at all. (The relaxed
// protocols make no such promise — their guarantees are exercised through
// sync operations in their own test files.)
#include <gtest/gtest.h>

#include <atomic>

#include "core/dsm.hpp"

#include "../gtest_util.hpp"
#include "../test_util.hpp"

namespace dsm {
namespace {

Config ivy_config(ProtocolKind kind) {
  Config cfg;
  cfg.n_nodes = 2;
  cfg.n_pages = 16;
  cfg.page_size = ViewRegion::os_page_size();
  cfg.protocol = kind;
  return cfg;
}

class SequentialConsistencyLitmus : public ::testing::TestWithParam<ProtocolKind> {
 protected:
  void SetUp() override { TUTORDSM_SKIP_IF_UFFD_UNAVAILABLE(); }
};

TEST_P(SequentialConsistencyLitmus, MessagePassingNeverSeesStaleData) {
  // data and flag live on different pages. Writer: data=i; flag=i.
  // Reader: spin until flag==i, then data must already be i.
  System sys(ivy_config(GetParam()));
  const auto data = sys.alloc_page_aligned<std::uint64_t>();
  const auto flag = sys.alloc_page_aligned<std::uint64_t>();
  std::atomic<int> violations{0};
  constexpr std::uint64_t kRounds = 40;

  sys.run([&](Worker& w) {
    if (w.id() == 0) {
      for (std::uint64_t i = 1; i <= kRounds; ++i) {
        *w.get(data) = i;
        *w.get(flag) = i;
      }
    } else {
      for (std::uint64_t i = 1; i <= kRounds; ++i) {
        while (test::force_read(w.get(flag)) < i) {
          std::this_thread::yield();  // single-core host: let service threads run
        }
        // Under SC, flag ≥ i implies data ≥ i.
        if (test::force_read(w.get(data)) < i) violations++;
      }
    }
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST_P(SequentialConsistencyLitmus, StoreBufferingForbiddenOutcome) {
  // SB: n0: x=1; r0=y.   n1: y=1; r1=x.   SC forbids r0==0 && r1==0.
  System sys(ivy_config(GetParam()));
  const auto x = sys.alloc_page_aligned<std::uint64_t>();
  const auto y = sys.alloc_page_aligned<std::uint64_t>();
  std::atomic<int> forbidden{0};

  for (int trial = 0; trial < 20; ++trial) {
    std::atomic<std::uint64_t> r0{9}, r1{9};
    sys.run([&](Worker& w) {
      // Reset under mutual visibility, then replicate both pages.
      if (w.id() == 0) {
        *w.get(x) = 0;
        *w.get(y) = 0;
      }
      w.barrier(0);
      test::force_read(w.get(x));
      test::force_read(w.get(y));
      w.barrier(0);
      if (w.id() == 0) {
        *w.get(x) = 1;
        r0 = test::force_read(w.get(y));
      } else {
        *w.get(y) = 1;
        r1 = test::force_read(w.get(x));
      }
      w.barrier(0);
    });
    if (r0.load() == 0 && r1.load() == 0) forbidden++;
  }
  EXPECT_EQ(forbidden.load(), 0);
}

TEST_P(SequentialConsistencyLitmus, WriteAtomicityIRIW) {
  // Independent reads of independent writes: two readers must not observe
  // the two writes in opposite orders under SC.
  Config cfg = ivy_config(GetParam());
  cfg.n_nodes = 4;
  System sys(cfg);
  const auto x = sys.alloc_page_aligned<std::uint64_t>();
  const auto y = sys.alloc_page_aligned<std::uint64_t>();
  std::atomic<int> violations{0};

  for (int trial = 0; trial < 10; ++trial) {
    std::atomic<std::uint64_t> r[4] = {};
    sys.run([&](Worker& w) {
      if (w.id() == 0) {
        *w.get(x) = 0;
        *w.get(y) = 0;
      }
      w.barrier(0);
      test::force_read(w.get(x));
      test::force_read(w.get(y));
      w.barrier(0);
      switch (w.id()) {
        case 0: *w.get(x) = 1; break;
        case 1: *w.get(y) = 1; break;
        case 2:
          r[0] = test::force_read(w.get(x));
          r[1] = test::force_read(w.get(y));
          break;
        case 3:
          r[2] = test::force_read(w.get(y));
          r[3] = test::force_read(w.get(x));
          break;
      }
      w.barrier(0);
    });
    // Forbidden: reader2 sees x=1,y=0 while reader3 sees y=1,x=0.
    if (r[0] == 1 && r[1] == 0 && r[2] == 1 && r[3] == 0) violations++;
  }
  EXPECT_EQ(violations.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(IvyVariants, SequentialConsistencyLitmus,
                         ::testing::Values(ProtocolKind::kIvyCentral,
                                           ProtocolKind::kIvyFixed,
                                           ProtocolKind::kIvyDynamic),
                         [](const ::testing::TestParamInfo<ProtocolKind>& pi) {
                           std::string s = to_string(pi.param);
                           for (auto& c : s) {
                             if (c == '-') c = '_';
                           }
                           return s;
                         });

TEST(RelaxedModels, SyncMakesWritesVisible) {
  TUTORDSM_SKIP_IF_UFFD_UNAVAILABLE();
  // The relaxed protocols' contract: writes are visible after the proper
  // synchronization (not before, necessarily). MP through a barrier.
  for (const auto kind : {ProtocolKind::kErcInvalidate, ProtocolKind::kErcUpdate,
                          ProtocolKind::kLrc, ProtocolKind::kHlrc}) {
    Config cfg;
    cfg.n_nodes = 2;
    cfg.n_pages = 16;
    cfg.page_size = ViewRegion::os_page_size();
    cfg.protocol = kind;
    System sys(cfg);
    const auto data = sys.alloc_page_aligned<std::uint64_t>();
    std::atomic<std::uint64_t> seen{0};
    sys.run([&](Worker& w) {
      if (w.id() == 0) *w.get(data) = 42;
      w.barrier(0);
      if (w.id() == 1) seen = test::force_read(w.get(data));
      w.barrier(0);
    });
    EXPECT_EQ(seen.load(), 42u) << to_string(kind);
  }
}

}  // namespace
}  // namespace dsm
