// Chaos suite: every protocol must produce exact results over a lossy,
// duplicating, reordering fabric — the reliable sublayer turns faults into
// latency, not corruption or hangs. Chaos decisions are seeded hashes per
// message, so injection adds no randomness beyond the workload's own
// scheduling. The final death test covers the
// opposite contract: when the link is *permanently* severed the run must not
// hang silently — the watchdog dumps state and aborts.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "apps/kernels.hpp"
#include "core/dsm.hpp"

#include "../gtest_util.hpp"

namespace dsm {
namespace {

/// TUTORDSM_CHAOS_SEED reseeds every chaos schedule in this suite (CI's
/// nightly-style seed sweep); unset, each test keeps its historical seed.
std::uint64_t chaos_seed(std::uint64_t fallback) {
  if (const char* env = std::getenv("TUTORDSM_CHAOS_SEED"); env != nullptr) {
    return std::strtoull(env, nullptr, 10);
  }
  return fallback;
}

std::string case_name(const ::testing::TestParamInfo<ProtocolKind>& pi) {
  std::string s = to_string(pi.param);
  for (auto& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

class ChaosProtocolTest : public ::testing::TestWithParam<ProtocolKind> {
 protected:
  void SetUp() override { TUTORDSM_SKIP_IF_UFFD_UNAVAILABLE(); }

  Config make_config() const {
    Config cfg;
    cfg.n_nodes = 3;
    cfg.n_pages = 32;
    cfg.protocol = GetParam();
    // Aggressive RTO so each injected drop costs milliseconds, not the
    // default 5 ms base — these tests inject hundreds of faults.
    cfg.reliability.rto_ms = 2;
    cfg.reliability.rto_max_ms = 32;
    cfg.chaos.enabled = true;
    cfg.chaos.seed = chaos_seed(1992);
    cfg.chaos.drop_probability = 0.05;
    cfg.chaos.duplicate_probability = 0.02;
    cfg.chaos.delay_probability = 0.05;
    cfg.chaos.delay_max_us = 300;
    // Safety net: a protocol bug under chaos should abort with a dump, not
    // eat the CI timeout.
    cfg.watchdog_ms = 60'000;
    // Chaos + check: retransmits and dedup must never let a duplicate or
    // reordered message violate SWMR, version monotonicity, or per-link
    // delivery order — dsmcheck aborts the run if they do.
    cfg.check_level = CheckLevel::kAssert;
    return cfg;
  }
};

TEST_P(ChaosProtocolTest, MigratoryCounterExactUnderLoss) {
  System sys(make_config());
  apps::MigratoryParams params;
  params.rounds = 5;
  const auto result = apps::run_migratory(sys, params);
  EXPECT_EQ(result.checksum, 5u * sys.config().n_nodes);
}

TEST_P(ChaosProtocolTest, ReductionExactUnderLoss) {
  System sys(make_config());
  apps::ReduceParams params;
  params.elements_per_node = 300;
  const auto result = apps::run_reduce(sys, params);
  const std::uint64_t total = 300u * sys.config().n_nodes;
  EXPECT_EQ(result.checksum, total * (total - 1) / 2);
}

TEST_P(ChaosProtocolTest, FalseSharingExactUnderLoss) {
  System sys(make_config());
  apps::FalseSharingParams params;
  params.counters_per_node = 4;
  params.iterations = 5;
  const auto result = apps::run_false_sharing(sys, params);
  EXPECT_EQ(result.checksum, 5u * 4u * sys.config().n_nodes);
}

TEST_P(ChaosProtocolTest, ScatterGatherExactUnderLoss) {
  System sys(make_config());
  const std::size_t n = sys.config().n_nodes;
  const std::size_t stride = sys.config().page_size / sizeof(std::uint64_t);
  const auto slots = sys.alloc_page_aligned<std::uint64_t>(n * stride);
  std::uint64_t gathered = 0;
  sys.run([&](Worker& w) {
    if (sys.config().protocol == ProtocolKind::kEc) {
      w.bind_barrier(0, slots, n * stride);
    }
    w.get(slots)[w.id() * stride] = 100 + w.id();
    w.barrier(0);
    if (w.id() == 0) {
      std::uint64_t sum = 0;
      for (std::uint64_t i = 0; i < n; ++i) sum += w.get(slots)[i * stride];
      gathered = sum;
    }
    w.barrier(0);
  });
  EXPECT_EQ(gathered, 100u * n + n * (n - 1) / 2);
}

TEST_P(ChaosProtocolTest, LockPingPongExactUnderLoss) {
  System sys(make_config());
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  std::uint64_t final_value = 0;
  constexpr int kRounds = 10;
  sys.run([&](Worker& w) {
    if (sys.config().protocol == ProtocolKind::kEc) w.bind(0, cell);
    w.barrier(0);
    for (int i = 0; i < kRounds; ++i) {
      w.acquire(0);
      *w.get(cell) += 1;
      w.release(0);
    }
    w.barrier(0);
    if (w.id() == 0) {
      w.acquire(0);
      final_value = *w.get(cell);
      w.release(0);
    }
  });
  EXPECT_EQ(final_value, static_cast<std::uint64_t>(kRounds) * sys.config().n_nodes);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ChaosProtocolTest,
    ::testing::Values(ProtocolKind::kIvyCentral, ProtocolKind::kIvyFixed,
                      ProtocolKind::kIvyDynamic, ProtocolKind::kErcInvalidate,
                      ProtocolKind::kErcUpdate, ProtocolKind::kLrc,
                      ProtocolKind::kEc, ProtocolKind::kHlrc),
    case_name);

TEST(ChaosStatsTest, HeavyLossActuallyExercisesRetransmits) {
  TUTORDSM_SKIP_IF_UFFD_UNAVAILABLE();
  // At 25% drop a migratory run sends enough messages that at least one is
  // dropped and recovered — guards against chaos silently not engaging.
  Config cfg;
  cfg.n_nodes = 3;
  cfg.protocol = ProtocolKind::kIvyDynamic;
  cfg.reliability.rto_ms = 2;
  cfg.reliability.rto_max_ms = 32;
  cfg.chaos.enabled = true;
  cfg.chaos.seed = chaos_seed(7);
  cfg.chaos.drop_probability = 0.25;
  cfg.watchdog_ms = 60'000;
  System sys(cfg);
  apps::MigratoryParams params;
  params.rounds = 4;
  const auto result = apps::run_migratory(sys, params);
  EXPECT_EQ(result.checksum, 4u * cfg.n_nodes);
  const auto snap = sys.stats();
  EXPECT_GE(snap.counter("net.dropped"), 1u);
  EXPECT_GE(snap.counter("net.retransmits"), 1u);
  EXPECT_EQ(snap.counter("net.gave_up"), 0u);
}

TEST(ChaosTraceTest, RetransmitSpansAppearAndBalanceHoldsUnderLoss) {
  TUTORDSM_SKIP_IF_UFFD_UNAVAILABLE();
  // The trace must tell the loss story: at 5% seeded drop the retransmit
  // instants mirror the net.retransmits counter exactly, every span still
  // closes, and the workload's checksum stays exact.
  Config cfg;
  cfg.n_nodes = 3;
  cfg.protocol = ProtocolKind::kIvyDynamic;
  cfg.reliability.rto_ms = 2;
  cfg.reliability.rto_max_ms = 32;
  cfg.chaos.enabled = true;
  cfg.chaos.seed = chaos_seed(1992);
  cfg.chaos.drop_probability = 0.05;
  cfg.watchdog_ms = 60'000;
  cfg.trace.enabled = true;
  cfg.trace.buffer_spans = 1 << 16;  // keep every span: no drop-oldest here
  System sys(cfg);
  apps::MigratoryParams params;
  params.rounds = 8;
  const auto result = apps::run_migratory(sys, params);
  EXPECT_EQ(result.checksum, 8u * cfg.n_nodes);

  ASSERT_NE(sys.tracer(), nullptr);
  const Tracer& tracer = *sys.tracer();
  EXPECT_EQ(tracer.open_spans(), 0);
  ASSERT_EQ(tracer.dropped(), 0u);

  std::uint64_t retransmit_spans = 0;
  for (const auto& ev : tracer.all_events()) {
    EXPECT_LE(ev.vstart, ev.vend);
    if (ev.cat == TraceCat::kNet && std::string(ev.name) == "retransmit") {
      ++retransmit_spans;
    }
  }
  const auto snap = sys.stats();
  EXPECT_GE(snap.counter("net.retransmits"), 1u);
  EXPECT_EQ(retransmit_spans, snap.counter("net.retransmits"));
  EXPECT_EQ(snap.counter("trace.dropped"), tracer.dropped());
}

TEST(WatchdogDeathTest, AbortsWithDiagnosticsOnPermanentLoss) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Config cfg;
        cfg.n_nodes = 2;
        cfg.protocol = ProtocolKind::kIvyCentral;
        cfg.chaos.enabled = true;
        cfg.chaos.drop_probability = 1.0;  // the link is severed
        cfg.reliability.rto_ms = 1;
        cfg.reliability.max_retries = 1;
        cfg.watchdog_ms = 500;
        System sys(cfg);
        const auto cell = sys.alloc_page_aligned<std::uint64_t>();
        sys.run([&](Worker& w) {
          if (w.id() == 1) {
            // Page 0 is homed on node 0; the read fault's request can never
            // get through, so this blocks forever — the watchdog's job.
            volatile std::uint64_t v = *w.get(cell);
            (void)v;
          }
        });
      },
      "WATCHDOG");
}

}  // namespace
}  // namespace dsm
