// ERC buddy-checkpoint tests: the cheap crash-recovery path for the
// release-consistent family. Every Nth home version of a page is snapshotted
// to the home's buddy; a killed-and-restarted home replays the buddy's
// snapshots while parking (or surviving re-sends of) client flushes.
#include <gtest/gtest.h>

#include <atomic>

#include "core/dsm.hpp"
#include "proto/erc.hpp"

#include "../gtest_util.hpp"
#include "../test_util.hpp"

namespace dsm {
namespace {

Config ckpt_config(std::size_t nodes, std::size_t period) {
  Config cfg;
  cfg.n_nodes = nodes;
  cfg.n_pages = 8;
  cfg.page_size = ViewRegion::os_page_size();
  cfg.protocol = ProtocolKind::kErcInvalidate;
  cfg.ft.enabled = true;
  cfg.ft.checkpoint_period = period;
  cfg.check_level = CheckLevel::kAssert;
  return cfg;
}

TEST(CkptTest, BuddyIsTheNextNodeInTheRing) {
  TUTORDSM_SKIP_IF_UFFD_UNAVAILABLE();
  System sys(ckpt_config(2, 1));
  EXPECT_EQ(dynamic_cast<const ErcProtocol&>(sys.protocol(0)).buddy(), 1u);
  EXPECT_EQ(dynamic_cast<const ErcProtocol&>(sys.protocol(1)).buddy(), 0u);
}

TEST(CkptTest, HomeSnapshotsEveryPeriodVersions) {
  TUTORDSM_SKIP_IF_UFFD_UNAVAILABLE();
  System sys(ckpt_config(2, 2));
  (void)sys.alloc_page_aligned<std::uint64_t>();               // page 0
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();   // page 1, home 1
  sys.run([&](Worker& w) {
    if (w.id() == 0) {
      // Four flushes to the home bump its version to 4; with period 2 the
      // home snapshots versions 2 and 4 to its buddy.
      for (int i = 0; i < 4; ++i) {
        w.acquire(0);
        *w.get(cell) += 1;
        w.release(0);
      }
    }
    w.barrier(0);
  });
  const auto snap = sys.stats();
  EXPECT_EQ(snap.counter("ft.ckpt_stores"), 2u);
  EXPECT_GE(snap.counter("ft.ckpt_bytes"), 2u * ViewRegion::os_page_size());
}

// The recovery scenario: the home of a written page dies and restarts. The
// restarted home refetches its checkpoints from the buddy before serving,
// and a client flush that lands anywhere in the crash window — acked before
// death, dead-dropped during it, or parked behind the restore — must still
// complete (release() would otherwise never return).
TEST(CkptTest, RestartedHomeRestoresFromBuddyAndServes) {
  TUTORDSM_SKIP_IF_UFFD_UNAVAILABLE();
  Config cfg = ckpt_config(2, 1);
  cfg.ft.faults = {{/*node=*/1, /*kill_at=*/1'000'000'000, /*restart=*/true}};
  System sys(cfg);
  (void)sys.alloc_page_aligned<std::uint64_t>();               // page 0
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();   // page 1, home = victim
  std::atomic<std::uint64_t> observed{0};
  sys.run([&](Worker& w) {
    if (w.id() == 0) {
      w.acquire(0);
      *w.get(cell) = 41;
      w.release(0);  // version 1 checkpointed to the buddy (node 0) pre-crash
    }
    w.barrier(0);
    if (w.id() == 1) w.compute(1'000'000'000);  // home dies, restarts, restores
    if (w.id() == 0) {
      w.acquire(0);
      *w.get(cell) = 42;  // flush must survive the crash window
      w.release(0);
      observed = test::force_read(w.get(cell));
    }
  });
  EXPECT_EQ(observed.load(), 42u);
  const auto snap = sys.stats();
  EXPECT_EQ(snap.counter("ft.kills"), 1u);
  EXPECT_EQ(snap.counter("ft.restarts"), 1u);
  EXPECT_GE(snap.counter("ft.ckpt_stores"), 1u);
  EXPECT_GE(snap.counter("ft.ckpt_restored_pages"), 1u);
}

}  // namespace
}  // namespace dsm
