// White-box tests of lazy release consistency: laziness (no data at
// release), write-notice invalidation at acquire, on-demand diff fetching,
// vector-clock progression, and barrier garbage collection.
#include <gtest/gtest.h>

#include <atomic>

#include "core/dsm.hpp"
#include "proto/lrc.hpp"

#include "../test_util.hpp"

namespace dsm {
namespace {

Config lrc_config(std::size_t nodes) {
  Config cfg;
  cfg.n_nodes = nodes;
  cfg.n_pages = 16;
  cfg.page_size = ViewRegion::os_page_size();
  cfg.protocol = ProtocolKind::kLrc;
  return cfg;
}

TEST(Lrc, ReleaseMovesNoPageData) {
  System sys(lrc_config(2));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  sys.run([&](Worker& w) {
    test::force_read(w.get(cell));
    w.barrier(0);
  });
  sys.reset_stats();
  // A lock-protected write + release, with NO subsequent reader: lazily,
  // nothing but the lock messages may cross the wire.
  sys.run([&](Worker& w) {
    if (w.id() == 1) {
      w.acquire(0);
      *w.get(cell) = 1;
      w.release(0);
    }
  });
  const auto snap = sys.stats();
  EXPECT_EQ(snap.counter("net.msgs.Update"), 0u);
  EXPECT_EQ(snap.counter("net.msgs.DiffRequest"), 0u);
  EXPECT_EQ(snap.counter("net.msgs.PageReply"), 0u);
}

TEST(Lrc, AcquirerInvalidatesNoticedPagesOnly) {
  System sys(lrc_config(3));
  const auto a = sys.alloc_page_aligned<std::uint64_t>();  // page 0
  const auto b = sys.alloc_page_aligned<std::uint64_t>();  // page 1
  std::atomic<bool> ready{false};
  std::atomic<int> state_a{-1}, state_b{-1};
  sys.run([&](Worker& w) {
    test::force_read(w.get(a));
    test::force_read(w.get(b));
    w.barrier(0);
    if (w.id() == 1) {
      w.acquire(0);
      *w.get(a) = 1;  // dirty page 0 only
      w.release(0);
      ready = true;
    }
    if (w.id() == 2) {
      while (!ready.load()) std::this_thread::yield();
      w.acquire(0);  // grant carries a notice for page 0, not page 1
      state_a = static_cast<int>(sys.table(2).state_of(0));
      state_b = static_cast<int>(sys.table(2).state_of(1));
      w.release(0);
    }
    w.barrier(1);
  });
  EXPECT_EQ(state_a.load(), static_cast<int>(PageState::kInvalid));
  EXPECT_EQ(state_b.load(), static_cast<int>(PageState::kReadOnly));
}

TEST(Lrc, LockChainCarriesNoticesAndFetchesDiffs) {
  System sys(lrc_config(3));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  std::atomic<std::uint64_t> seen{0};
  std::atomic<bool> ready{false};
  sys.run([&](Worker& w) {
    test::force_read(w.get(cell));  // everyone holds a base copy
    w.barrier(0);
    if (w.id() == 1) {
      w.acquire(0);
      *w.get(cell) = 77;
      w.release(0);
      ready = true;
    }
    if (w.id() == 2) {
      while (!ready.load()) std::this_thread::yield();  // host-side sequencing
      w.acquire(0);
      seen = test::force_read(w.get(cell));  // fault → diff fetch from node 1
      w.release(0);
    }
    w.barrier(1);
  });
  EXPECT_EQ(seen.load(), 77u);
  const auto snap = sys.stats();
  EXPECT_GE(snap.counter("lrc.notice_invalidations"), 1u);
  EXPECT_GE(snap.counter("net.msgs.DiffRequest"), 1u);
  EXPECT_GE(snap.counter("net.msgs.DiffReply"), 1u);
}

TEST(Lrc, UninvolvedNodeKeepsStaleCopyLegally) {
  System sys(lrc_config(3));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  std::atomic<std::uint64_t> stale_read{1234};
  std::atomic<bool> ready{false};
  sys.run([&](Worker& w) {
    test::force_read(w.get(cell));
    w.barrier(0);
    if (w.id() == 1) {
      w.acquire(0);
      *w.get(cell) = 9;
      w.release(0);
      ready = true;
    }
    if (w.id() == 2) {
      while (!ready.load()) std::this_thread::yield();
      // No acquire: node 2 never synchronized with the writer, so LRC lets
      // it read the OLD value from its still-valid copy — laziness at work.
      stale_read = test::force_read(w.get(cell));
    }
    w.barrier(1);
  });
  EXPECT_EQ(stale_read.load(), 0u);
  // Node 2's copy was never invalidated before the barrier.
}

TEST(Lrc, VectorClockAdvancesPerInterval) {
  System sys(lrc_config(2));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  sys.run([&](Worker& w) {
    if (w.id() == 1) {
      for (int i = 0; i < 3; ++i) {
        w.acquire(0);
        *w.get(cell) += 1;
        w.release(0);  // closes one interval per release (page dirtied each time)
      }
    }
  });
  const auto& lrc1 = dynamic_cast<LrcProtocol&>(sys.protocol(1));
  EXPECT_EQ(lrc1.vclock()[1], 3u);
  EXPECT_EQ(lrc1.vclock()[0], 0u);
}

TEST(Lrc, EmptyIntervalIsFree) {
  System sys(lrc_config(2));
  sys.run([&](Worker& w) {
    if (w.id() == 1) {
      w.acquire(0);  // no writes
      w.release(0);
    }
  });
  const auto& lrc1 = dynamic_cast<LrcProtocol&>(sys.protocol(1));
  EXPECT_EQ(lrc1.vclock()[1], 0u);  // no dirty pages → no interval
}

TEST(Lrc, BarrierGarbageCollectsDiffs) {
  auto cfg = lrc_config(2);
  cfg.lrc_gc_period = 1;  // settle (and GC) on every barrier
  System sys(cfg);
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  sys.run([&](Worker& w) {
    if (w.id() == 1) {
      w.acquire(0);
      *w.get(cell) = 1;
      w.release(0);
    }
    w.barrier(0);
  });
  const auto& lrc1 = dynamic_cast<LrcProtocol&>(sys.protocol(1));
  EXPECT_EQ(lrc1.cached_diffs(), 0u);
  // And the barrier synchronized the clocks.
  const auto& lrc0 = dynamic_cast<LrcProtocol&>(sys.protocol(0));
  EXPECT_EQ(lrc0.vclock(), lrc1.vclock());
}

TEST(Lrc, BarrierPublishesAllWrites) {
  System sys(lrc_config(4));
  const auto arr = sys.alloc_page_aligned<std::uint64_t>(8);
  std::atomic<int> errors{0};
  sys.run([&](Worker& w) {
    w.get(arr)[w.id()] = w.id() + 1;  // concurrent writers, same page
    w.barrier(0);
    for (std::uint64_t n = 0; n < 4; ++n) {
      if (w.get(arr)[n] != n + 1) errors++;
    }
    w.barrier(0);
  });
  EXPECT_EQ(errors.load(), 0);
}

TEST(Lrc, TransitiveCausalityThroughLockChain) {
  // w0 writes A under L0; w1 acquires L0 (learns A), writes B under L1;
  // w2 acquires L1 and must see BOTH writes (vector clocks make the first
  // one's notices travel with the second grant).
  System sys(lrc_config(3));
  const auto a = sys.alloc_page_aligned<std::uint64_t>();
  const auto b = sys.alloc_page_aligned<std::uint64_t>();
  std::atomic<std::uint64_t> got_a{0}, got_b{0};
  std::atomic<int> stage{0};
  sys.run([&](Worker& w) {
    test::force_read(w.get(a));
    test::force_read(w.get(b));
    w.barrier(0);
    if (w.id() == 0) {
      w.acquire(0);
      *w.get(a) = 11;
      w.release(0);
      stage = 1;
    }
    if (w.id() == 1) {
      while (stage.load() < 1) std::this_thread::yield();
      w.acquire(0);  // happens-after node 0's release
      w.release(0);
      w.acquire(1);
      *w.get(b) = 22;
      w.release(1);
      stage = 2;
    }
    if (w.id() == 2) {
      while (stage.load() < 2) std::this_thread::yield();
      w.acquire(1);  // transitively after node 0's interval
      got_a = test::force_read(w.get(a));
      got_b = test::force_read(w.get(b));
      w.release(1);
    }
    w.barrier(1);
  });
  EXPECT_EQ(got_a.load(), 11u);
  EXPECT_EQ(got_b.load(), 22u);
}

TEST(Lrc, BarrierIsSettledBeforeAnyoneResumes) {
  // Regression: without the two-phase barrier, a node that resumed early
  // could cold-fault to a home that had not yet applied the barrier's diffs
  // (after the write notices were GC'd) and install a permanently stale
  // base copy. 16 nodes make the race window wide.
  Config cfg;
  cfg.n_nodes = 16;
  cfg.n_pages = 64;
  cfg.page_size = ViewRegion::os_page_size();
  cfg.protocol = ProtocolKind::kLrc;
  cfg.lrc_gc_period = 1;  // settle every barrier: the race needs a GC round
  System sys(cfg);
  const std::size_t words = 24 * cfg.page_size / sizeof(std::uint64_t);
  const auto data = sys.alloc_page_aligned<std::uint64_t>(words);
  std::atomic<std::uint64_t> errors{0};
  sys.run([&](Worker& w) {
    if (w.id() == 0) {
      for (std::size_t i = 0; i < words; ++i) w.get(data)[i] = i ^ 0xABCDu;
    }
    w.barrier(0);
    // Everyone immediately reads pages homed all over the system.
    for (std::size_t i = 0; i < words; i += 64) {
      if (w.get(data)[i] != (i ^ 0xABCDu)) errors++;
    }
    w.barrier(0);
  });
  EXPECT_EQ(errors.load(), 0u);
  // The two-phase machinery actually engaged: 2 barriers × 2 phases × 16.
  EXPECT_GE(sys.stats().counter("net.msgs.BarrierRelease"), 4u * 16u);
  EXPECT_GE(sys.stats().counter("lrc.settle_barriers"), 2u * 16u);
}

TEST(Lrc, LazyBarrierMovesNoticesNotData) {
  // Between settle-ups, a barrier ships only write notices; the data moves
  // on demand. Readers that never touch the written page cost nothing.
  Config cfg;
  cfg.n_nodes = 4;
  cfg.n_pages = 16;
  cfg.page_size = ViewRegion::os_page_size();
  cfg.protocol = ProtocolKind::kLrc;
  cfg.lrc_gc_period = 100;  // no settle round in this test
  System sys(cfg);
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  std::atomic<std::uint64_t> seen{0};
  sys.run([&](Worker& w) {
    test::force_read(w.get(cell));  // everyone holds a base copy
    w.barrier(0);
    if (w.id() == 1) *w.get(cell) = 7;
    sys.reset_stats();
    w.barrier(0);
    // Only node 2 reads: exactly one diff fetch, not a broadcast.
    if (w.id() == 2) seen = test::force_read(w.get(cell));
    w.barrier(1);
  });
  EXPECT_EQ(seen.load(), 7u);
  const auto snap = sys.stats();
  EXPECT_EQ(snap.counter("lrc.settle_barriers"), 0u);
  EXPECT_GE(snap.counter("lrc.lazy_barriers"), 4u);
  EXPECT_EQ(snap.counter("net.msgs.DiffRequest"), 1u);
  EXPECT_EQ(snap.counter("net.msgs.DiffReply"), 1u);
}

TEST(Lrc, SettleBarrierGarbageCollects) {
  Config cfg;
  cfg.n_nodes = 2;
  cfg.n_pages = 16;
  cfg.page_size = ViewRegion::os_page_size();
  cfg.protocol = ProtocolKind::kLrc;
  cfg.lrc_gc_period = 3;  // barriers 1,2 lazy; barrier 3 settles
  System sys(cfg);
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  sys.run([&](Worker& w) {
    for (int round = 0; round < 3; ++round) {
      if (w.id() == 1) {
        w.acquire(0);
        *w.get(cell) += 1;
        w.release(0);
      }
      w.barrier(0);
    }
  });
  const auto& lrc1 = dynamic_cast<LrcProtocol&>(sys.protocol(1));
  EXPECT_EQ(lrc1.cached_diffs(), 0u);  // GC ran on the third barrier
  EXPECT_EQ(sys.stats().counter("lrc.settle_barriers"), 2u);  // 1 round × 2 nodes
}

TEST(Lrc, ReleaseOfInvalidatedDirtyPageEncodesSafely) {
  // Regression (mirrors the HLRC test): closing an interval must be able to
  // diff a page that was invalidated (PROT_NONE) while dirty without the
  // encode faulting on the app thread (self-deadlock on the entry lock).
  System sys(lrc_config(3));
  const auto arr = sys.alloc_page_aligned<std::uint64_t>(8);
  std::atomic<bool> ready{false};
  std::atomic<std::uint64_t> final_value{0};
  sys.run([&](Worker& w) {
    test::force_read(w.get(arr));
    w.barrier(0);
    if (w.id() == 1) {
      w.acquire(0);
      w.get(arr)[0] = 10;
      w.release(0);
      ready = true;
    }
    if (w.id() == 2) {
      w.acquire(1);
      w.get(arr)[4] = 40;
      while (!ready.load()) std::this_thread::yield();
      w.acquire(0);
      w.release(0);
      w.release(1);  // interval close of the invalid dirty page
    }
    w.barrier(1);
    if (w.id() == 0) {
      w.acquire(1);
      final_value = test::force_read(&w.get(arr)[4]);
      w.release(1);
    }
    w.barrier(1);
  });
  EXPECT_EQ(final_value.load(), 40u);
}

TEST(Lrc, ColdFaultAfterBarrierServedByHome) {
  System sys(lrc_config(2));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();  // home: node 0
  std::atomic<std::uint64_t> seen{0};
  sys.run([&](Worker& w) {
    if (w.id() == 0) *w.get(cell) = 5;  // home writes (local upgrade)
    w.barrier(0);
    if (w.id() == 1) seen = test::force_read(w.get(cell));  // cold miss → home
    w.barrier(0);
  });
  EXPECT_EQ(seen.load(), 5u);
  EXPECT_GE(sys.stats().counter("net.msgs.PageRequest"), 1u);
}

}  // namespace
}  // namespace dsm
