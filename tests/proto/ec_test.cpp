// White-box tests of entry consistency: data rides the lock grant, unbound
// data deliberately does NOT move, barrier-bound exchange, no page faults.
#include <gtest/gtest.h>

#include <atomic>

#include "core/dsm.hpp"

#include "../test_util.hpp"

namespace dsm {
namespace {

Config ec_config(std::size_t nodes) {
  Config cfg;
  cfg.n_nodes = nodes;
  cfg.n_pages = 16;
  cfg.page_size = ViewRegion::os_page_size();
  cfg.protocol = ProtocolKind::kEc;
  return cfg;
}

TEST(Ec, AllPagesResidentNoFaults) {
  System sys(ec_config(3));
  const auto arr = sys.alloc<std::uint64_t>(256);
  sys.reset_stats();
  sys.run([&](Worker& w) {
    // Unsynchronized scribbling in a private slice: never faults under EC.
    for (int i = 0; i < 10; ++i) w.get(arr)[w.id() * 10 + static_cast<unsigned>(i)] = 1;
  });
  EXPECT_EQ(sys.stats().counter("proto.read_faults"), 0u);
  EXPECT_EQ(sys.stats().counter("proto.write_faults"), 0u);
}

TEST(Ec, DataTravelsWithLockGrant) {
  System sys(ec_config(2));
  const auto cell = sys.alloc<std::uint64_t>();
  std::atomic<std::uint64_t> seen{0};
  std::atomic<bool> ready{false};
  sys.run([&](Worker& w) {
    w.bind(0, cell);
    w.barrier(0);
    if (w.id() == 0) {
      w.acquire(0);
      *w.get(cell) = 31337;
      w.release(0);
      ready = true;
    }
    if (w.id() == 1) {
      while (!ready.load()) std::this_thread::yield();
      w.acquire(0);
      seen = test::force_read(w.get(cell));
      w.release(0);
    }
    w.barrier(0);
  });
  EXPECT_EQ(seen.load(), 31337u);
}

TEST(Ec, UnboundDataDoesNotMove) {
  System sys(ec_config(2));
  const auto bound = sys.alloc<std::uint64_t>();
  const auto unbound = sys.alloc<std::uint64_t>();
  std::atomic<std::uint64_t> seen_bound{0}, seen_unbound{1};
  std::atomic<bool> ready{false};
  sys.run([&](Worker& w) {
    w.bind(0, bound);
    w.barrier(0);
    if (w.id() == 0) {
      w.acquire(0);
      *w.get(bound) = 1;
      *w.get(unbound) = 1;  // programmer error under EC
      w.release(0);
      ready = true;
    }
    if (w.id() == 1) {
      while (!ready.load()) std::this_thread::yield();
      w.acquire(0);
      seen_bound = test::force_read(w.get(bound));
      seen_unbound = test::force_read(w.get(unbound));
      w.release(0);
    }
    w.barrier(0);
  });
  EXPECT_EQ(seen_bound.load(), 1u);
  EXPECT_EQ(seen_unbound.load(), 0u);  // the annotation gap is visible
}

TEST(Ec, MultipleRegionsOneLock) {
  System sys(ec_config(2));
  const auto a = sys.alloc<std::uint64_t>(4);
  const auto b = sys.alloc<double>(4);
  std::atomic<int> errors{0};
  std::atomic<bool> ready{false};
  sys.run([&](Worker& w) {
    w.bind(0, a, 4);
    w.bind(0, b, 4);
    w.barrier(0);
    if (w.id() == 0) {
      w.acquire(0);
      for (int i = 0; i < 4; ++i) {
        w.get(a)[i] = static_cast<std::uint64_t>(i);
        w.get(b)[i] = i * 0.5;
      }
      w.release(0);
      ready = true;
    }
    if (w.id() == 1) {
      while (!ready.load()) std::this_thread::yield();
      w.acquire(0);
      for (int i = 0; i < 4; ++i) {
        if (w.get(a)[i] != static_cast<std::uint64_t>(i)) errors++;
        if (w.get(b)[i] != i * 0.5) errors++;
      }
      w.release(0);
    }
    w.barrier(0);
  });
  EXPECT_EQ(errors.load(), 0);
}

TEST(Ec, BarrierBoundRegionsExchange) {
  System sys(ec_config(4));
  const auto arr = sys.alloc<std::uint64_t>(4);
  std::atomic<int> errors{0};
  sys.run([&](Worker& w) {
    w.bind_barrier(0, arr, 4);
    w.barrier(0);  // snapshot twins consistently
    w.get(arr)[w.id()] = 100 + w.id();
    w.barrier(0);
    for (std::uint64_t n = 0; n < 4; ++n) {
      if (w.get(arr)[n] != 100 + n) errors++;
    }
    w.barrier(0);
  });
  EXPECT_EQ(errors.load(), 0);
}

TEST(Ec, RepeatedHandoffsAccumulate) {
  System sys(ec_config(3));
  const auto cell = sys.alloc<std::uint64_t>();
  std::uint64_t final_value = 0;
  sys.run([&](Worker& w) {
    w.bind(0, cell);
    w.barrier(0);
    for (int i = 0; i < 15; ++i) {
      w.acquire(0);
      *w.get(cell) += 1;
      w.release(0);
    }
    w.barrier(0);
    if (w.id() == 0) {
      w.acquire(0);
      final_value = *w.get(cell);
      w.release(0);
    }
  });
  EXPECT_EQ(final_value, 45u);
}

TEST(Ec, LaggardFallsBackToFullTransfer) {
  // The version log is pruned to a fixed depth; an acquirer that slept
  // through more handoffs than the log holds must receive the full bound
  // region (correctness over cleverness), and still see the latest value.
  System sys(ec_config(3));
  const auto cell = sys.alloc<std::uint64_t>();
  std::atomic<std::uint64_t> laggard_saw{0};
  std::atomic<int> rounds_done{0};
  sys.run([&](Worker& w) {
    w.bind(0, cell);
    w.barrier(0);
    static std::atomic<int> turn{0};
    if (w.id() == 0) turn = 0;  // reset across runs
    w.barrier(0);
    if (w.id() == 0 || w.id() == 1) {
      // Strict alternation: 40 genuine token handoffs → 40 versions, far
      // beyond the 16-entry log cap (lock caching would otherwise collapse
      // consecutive acquires into one version).
      for (int i = 0; i < 40; ++i) {
        if (static_cast<NodeId>(i % 2) != w.id()) {
          while (turn.load() <= i) std::this_thread::yield();
          continue;
        }
        w.acquire(0);
        *w.get(cell) += 1;
        w.release(0);
        turn = i + 1;
      }
      rounds_done++;
    }
    if (w.id() == 2) {
      while (rounds_done.load() < 2) std::this_thread::yield();
      w.acquire(0);  // version 0 vs ~40: log can't cover the gap
      laggard_saw = test::force_read(w.get(cell));
      w.release(0);
    }
    w.barrier(0);
  });
  EXPECT_EQ(laggard_saw.load(), 40u);
  EXPECT_GE(sys.stats().counter("ec.full_transfers"), 1u);
}

TEST(Ec, GrantCarriesOnlyDiffs) {
  // A large bound region with a one-word change must not ship the whole
  // region with the grant.
  System sys(ec_config(2));
  const auto big = sys.alloc<std::uint64_t>(2048);  // 16 KiB bound region
  std::atomic<bool> ready{false};
  sys.run([&](Worker& w) {
    w.bind(0, big, 2048);
    w.barrier(0);
    if (w.id() == 0) {
      w.acquire(0);
      w.get(big)[1000] = 1;
      w.release(0);
      ready = true;
    }
    if (w.id() == 1) {
      while (!ready.load()) std::this_thread::yield();
      w.acquire(0);
      w.release(0);
    }
    w.barrier(0);
  });
  // diff bytes counter counts encoded payloads: far less than 16 KiB.
  EXPECT_LT(sys.stats().counter("ec.diff_bytes"), 1024u);
}

}  // namespace
}  // namespace dsm
