#include "common/clock.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace dsm {
namespace {

TEST(LogicalClock, StartsAtZero) {
  LogicalClock c;
  EXPECT_EQ(c.now(), 0u);
}

TEST(LogicalClock, AdvanceAccumulates) {
  LogicalClock c;
  EXPECT_EQ(c.advance(10), 10u);
  EXPECT_EQ(c.advance(5), 15u);
  EXPECT_EQ(c.now(), 15u);
}

TEST(LogicalClock, AdvanceToNeverGoesBackwards) {
  LogicalClock c;
  c.advance(100);
  EXPECT_EQ(c.advance_to(50), 100u);  // stays at 100
  EXPECT_EQ(c.now(), 100u);
  EXPECT_EQ(c.advance_to(200), 200u);
  EXPECT_EQ(c.now(), 200u);
}

TEST(LogicalClock, ResetZeroes) {
  LogicalClock c;
  c.advance(42);
  c.reset();
  EXPECT_EQ(c.now(), 0u);
}

TEST(LogicalClock, ConcurrentAdvancesAllCount) {
  LogicalClock c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10'000; ++i) c.advance(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.now(), 40'000u);
}

TEST(LogicalClock, ConcurrentAdvanceToTakesMax) {
  LogicalClock c;
  std::vector<std::thread> threads;
  for (int t = 1; t <= 4; ++t) {
    threads.emplace_back([&c, t] { c.advance_to(static_cast<VirtualTime>(t) * 1000); });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.now(), 4000u);
}

}  // namespace
}  // namespace dsm
