#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace dsm {
namespace {

TEST(Wire, RoundTripScalars) {
  WireWriter w;
  w.put<std::uint32_t>(0xDEADBEEF);
  w.put<std::uint8_t>(7);
  w.put<std::uint64_t>(1ULL << 60);
  w.put<double>(3.25);

  WireReader r(w.view());
  EXPECT_EQ(r.get<std::uint32_t>(), 0xDEADBEEFu);
  EXPECT_EQ(r.get<std::uint8_t>(), 7u);
  EXPECT_EQ(r.get<std::uint64_t>(), 1ULL << 60);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.25);
  EXPECT_TRUE(r.done());
}

TEST(Wire, RoundTripBytes) {
  std::vector<std::byte> data{std::byte{1}, std::byte{2}, std::byte{3}};
  WireWriter w;
  w.put_bytes(data);
  WireReader r(w.view());
  const auto out = r.get_bytes();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1], std::byte{2});
  EXPECT_TRUE(r.done());
}

TEST(Wire, EmptyBytesRoundTrip) {
  WireWriter w;
  w.put_bytes({});
  WireReader r(w.view());
  EXPECT_EQ(r.get_bytes().size(), 0u);
  EXPECT_TRUE(r.done());
}

TEST(Wire, RoundTripVector) {
  std::vector<std::uint32_t> v{10, 20, 30, 40};
  WireWriter w;
  w.put_vector(v);
  WireReader r(w.view());
  EXPECT_EQ(r.get_vector<std::uint32_t>(), v);
}

TEST(Wire, RawBytesAreUnprefixed) {
  std::vector<std::byte> data(16, std::byte{0xAB});
  WireWriter w;
  w.put_raw(data);
  EXPECT_EQ(w.size(), 16u);  // no length header
  WireReader r(w.view());
  const auto out = r.get_raw(16);
  EXPECT_EQ(out[15], std::byte{0xAB});
}

TEST(Wire, MixedSequence) {
  WireWriter w;
  w.put<std::uint32_t>(42);
  w.put_vector(std::vector<std::uint16_t>{1, 2, 3});
  w.put_bytes(std::vector<std::byte>{std::byte{9}});
  WireReader r(w.view());
  EXPECT_EQ(r.get<std::uint32_t>(), 42u);
  EXPECT_EQ(r.get_vector<std::uint16_t>().size(), 3u);
  EXPECT_EQ(r.get_bytes()[0], std::byte{9});
  EXPECT_TRUE(r.done());
}

TEST(Wire, RemainingCountsDown) {
  WireWriter w;
  w.put<std::uint32_t>(1);
  w.put<std::uint32_t>(2);
  WireReader r(w.view());
  EXPECT_EQ(r.remaining(), 8u);
  r.get<std::uint32_t>();
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(WireDeathTest, UnderflowAborts) {
  WireWriter w;
  w.put<std::uint16_t>(1);
  WireReader r(w.view());
  EXPECT_DEATH(r.get<std::uint64_t>(), "wire underflow");
}

TEST(WireDeathTest, TruncatedBytesAbort) {
  WireWriter w;
  w.put<std::uint32_t>(100);  // claims 100 bytes follow; none do
  WireReader r(w.view());
  EXPECT_DEATH(r.get_bytes(), "wire underflow");
}

TEST(Wire, TakeMovesBuffer) {
  WireWriter w;
  w.put<std::uint32_t>(5);
  auto buffer = std::move(w).take();
  EXPECT_EQ(buffer.size(), 4u);
}

}  // namespace
}  // namespace dsm
