#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace dsm {
namespace {

TEST(Counter, StartsAtZero) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, AddAccumulates) {
  Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ResetClears) {
  Counter c;
  c.add(7);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentIncrementsAllLand) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Histogram, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(Histogram, SingleSample) {
  Histogram h;
  h.record(100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 100u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 100.0);
}

TEST(Histogram, MaxTracksLargest) {
  Histogram h;
  h.record(5);
  h.record(500);
  h.record(50);
  EXPECT_EQ(h.max(), 500u);
}

TEST(Histogram, QuantilesAreMonotone) {
  Histogram h;
  for (std::uint64_t i = 1; i <= 1000; ++i) h.record(i);
  const auto p50 = h.quantile(0.5);
  const auto p90 = h.quantile(0.9);
  const auto p99 = h.quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max());
  // Log2 buckets: p50 of 1..1000 must land within a factor of 2 of 500.
  EXPECT_GE(p50, 255u);
  EXPECT_LE(p50, 1023u);
}

TEST(Histogram, ZeroSamplesLandInZeroBucket) {
  Histogram h;
  h.record(0);
  h.record(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(Histogram, QuantileOnEmptyHistogramIsZeroForAllQ) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
}

TEST(Histogram, QuantileSingleSampleIsThatSampleAtBothEnds) {
  Histogram h;
  h.record(100);
  EXPECT_EQ(h.quantile(0.0), 100u);
  EXPECT_EQ(h.quantile(0.5), 100u);
  EXPECT_EQ(h.quantile(1.0), 100u);
}

TEST(Histogram, QuantileOneIsExactMax) {
  // quantile(1.0) must return max() exactly, not a bucket upper bound.
  Histogram h;
  h.record(1);
  h.record(1000);  // bucket upper bound 1023
  EXPECT_EQ(h.quantile(1.0), 1000u);
}

TEST(Histogram, QuantileZeroBoundsTheSmallestSample) {
  Histogram h;
  h.record(5);
  h.record(100);
  // q=0 lands in the smallest occupied bucket: [4,7] for sample 5.
  EXPECT_GE(h.quantile(0.0), 5u);
  EXPECT_LE(h.quantile(0.0), 7u);
}

TEST(Histogram, QuantileClampsOutOfRangeQ) {
  Histogram h;
  h.record(42);
  EXPECT_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(Histogram, LargeSamplesSaturateWithoutOverflow) {
  Histogram h;
  h.record(~0ULL);
  EXPECT_EQ(h.max(), ~0ULL);
  EXPECT_EQ(h.quantile(1.0), ~0ULL);
}

TEST(StatsRegistry, SnapshotDeterministicAfterConcurrentRecord) {
  StatsRegistry reg;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 2'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      auto& h = reg.histogram("lat");
      for (std::uint64_t i = 1; i <= kPerThread; ++i) h.record(i);
    });
  }
  for (auto& t : threads) t.join();

  // Every concurrent record landed, and repeated snapshots agree exactly.
  const auto a = reg.snapshot();
  const auto b = reg.snapshot();
  const auto& ha = a.histograms.at("lat");
  const auto& hb = b.histograms.at("lat");
  EXPECT_EQ(ha.count, kThreads * kPerThread);
  EXPECT_EQ(ha.sum, kThreads * kPerThread * (kPerThread + 1) / 2);
  EXPECT_EQ(ha.max, kPerThread);
  EXPECT_EQ(ha.count, hb.count);
  EXPECT_EQ(ha.sum, hb.sum);
  EXPECT_EQ(ha.p50, hb.p50);
  EXPECT_EQ(ha.p99, hb.p99);
}

TEST(StatsRegistry, SnapshotUnderLiveWritersIsInternallyBounded) {
  // A snapshot may straddle concurrent records; it must still be sane:
  // counts never go backwards and no value escapes the sample domain.
  StatsRegistry reg;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    auto& h = reg.histogram("live");
    std::uint64_t i = 1;
    while (!stop.load(std::memory_order_relaxed)) h.record(i++ % 4096);
  });
  std::uint64_t last_count = 0;
  for (int k = 0; k < 200; ++k) {
    const auto snap = reg.snapshot();
    const auto it = snap.histograms.find("live");
    if (it == snap.histograms.end()) continue;
    EXPECT_GE(it->second.count, last_count);
    last_count = it->second.count;
    EXPECT_LE(it->second.max, 4095u);
    EXPECT_LE(it->second.p50, it->second.p99);
  }
  stop.store(true);
  writer.join();
}

TEST(StatsRegistry, CounterIsStableAcrossLookups) {
  StatsRegistry reg;
  reg.counter("x").add(3);
  reg.counter("x").add(4);
  EXPECT_EQ(reg.snapshot().counter("x"), 7u);
}

TEST(StatsRegistry, UnknownCounterReadsZero) {
  StatsRegistry reg;
  EXPECT_EQ(reg.snapshot().counter("never-touched"), 0u);
}

TEST(StatsRegistry, SnapshotCapturesHistograms) {
  StatsRegistry reg;
  reg.histogram("h").record(10);
  reg.histogram("h").record(30);
  const auto snap = reg.snapshot();
  const auto it = snap.histograms.find("h");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_EQ(it->second.count, 2u);
  EXPECT_DOUBLE_EQ(it->second.mean, 20.0);
}

TEST(StatsRegistry, ResetClearsEverything) {
  StatsRegistry reg;
  reg.counter("c").add(5);
  reg.histogram("h").record(5);
  reg.reset();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("c"), 0u);
  EXPECT_EQ(snap.histograms.at("h").count, 0u);
}

TEST(StatsRegistry, ToStringMentionsNames) {
  StatsRegistry reg;
  reg.counter("net.msgs").add(12);
  const auto text = reg.snapshot().to_string();
  EXPECT_NE(text.find("net.msgs"), std::string::npos);
  EXPECT_NE(text.find("12"), std::string::npos);
}

TEST(StatsRegistry, ConcurrentRegistrationIsSafe) {
  StatsRegistry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < 100; ++i) {
        reg.counter("shared").add();
        reg.counter("own." + std::to_string(t)).add();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.snapshot().counter("shared"), 800u);
}

}  // namespace
}  // namespace dsm
