#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace dsm {
namespace {

TEST(Counter, StartsAtZero) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, AddAccumulates) {
  Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ResetClears) {
  Counter c;
  c.add(7);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentIncrementsAllLand) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Histogram, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(Histogram, SingleSample) {
  Histogram h;
  h.record(100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 100u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 100.0);
}

TEST(Histogram, MaxTracksLargest) {
  Histogram h;
  h.record(5);
  h.record(500);
  h.record(50);
  EXPECT_EQ(h.max(), 500u);
}

TEST(Histogram, QuantilesAreMonotone) {
  Histogram h;
  for (std::uint64_t i = 1; i <= 1000; ++i) h.record(i);
  const auto p50 = h.quantile(0.5);
  const auto p90 = h.quantile(0.9);
  const auto p99 = h.quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max());
  // Log2 buckets: p50 of 1..1000 must land within a factor of 2 of 500.
  EXPECT_GE(p50, 255u);
  EXPECT_LE(p50, 1023u);
}

TEST(Histogram, ZeroSamplesLandInZeroBucket) {
  Histogram h;
  h.record(0);
  h.record(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(StatsRegistry, CounterIsStableAcrossLookups) {
  StatsRegistry reg;
  reg.counter("x").add(3);
  reg.counter("x").add(4);
  EXPECT_EQ(reg.snapshot().counter("x"), 7u);
}

TEST(StatsRegistry, UnknownCounterReadsZero) {
  StatsRegistry reg;
  EXPECT_EQ(reg.snapshot().counter("never-touched"), 0u);
}

TEST(StatsRegistry, SnapshotCapturesHistograms) {
  StatsRegistry reg;
  reg.histogram("h").record(10);
  reg.histogram("h").record(30);
  const auto snap = reg.snapshot();
  const auto it = snap.histograms.find("h");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_EQ(it->second.count, 2u);
  EXPECT_DOUBLE_EQ(it->second.mean, 20.0);
}

TEST(StatsRegistry, ResetClearsEverything) {
  StatsRegistry reg;
  reg.counter("c").add(5);
  reg.histogram("h").record(5);
  reg.reset();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("c"), 0u);
  EXPECT_EQ(snap.histograms.at("h").count, 0u);
}

TEST(StatsRegistry, ToStringMentionsNames) {
  StatsRegistry reg;
  reg.counter("net.msgs").add(12);
  const auto text = reg.snapshot().to_string();
  EXPECT_NE(text.find("net.msgs"), std::string::npos);
  EXPECT_NE(text.find("12"), std::string::npos);
}

TEST(StatsRegistry, ConcurrentRegistrationIsSafe) {
  StatsRegistry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < 100; ++i) {
        reg.counter("shared").add();
        reg.counter("own." + std::to_string(t)).add();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.snapshot().counter("shared"), 800u);
}

}  // namespace
}  // namespace dsm
