#include "common/bitset.hpp"

#include <gtest/gtest.h>

namespace dsm {
namespace {

TEST(NodeSet, StartsEmpty) {
  NodeSet s(64);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
}

TEST(NodeSet, InsertContains) {
  NodeSet s(10);
  s.insert(3);
  s.insert(7);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.count(), 2u);
}

TEST(NodeSet, InsertIsIdempotent) {
  NodeSet s(8);
  s.insert(2);
  s.insert(2);
  EXPECT_EQ(s.count(), 1u);
}

TEST(NodeSet, EraseRemoves) {
  NodeSet s(8);
  s.insert(5);
  s.erase(5);
  EXPECT_FALSE(s.contains(5));
  EXPECT_TRUE(s.empty());
}

TEST(NodeSet, WorksAcrossWordBoundary) {
  NodeSet s(130);
  s.insert(0);
  s.insert(63);
  s.insert(64);
  s.insert(129);
  EXPECT_EQ(s.count(), 4u);
  const auto members = s.members();
  EXPECT_EQ(members, (std::vector<NodeId>{0, 63, 64, 129}));
}

TEST(NodeSet, MembersAscending) {
  NodeSet s(16);
  s.insert(9);
  s.insert(1);
  s.insert(4);
  EXPECT_EQ(s.members(), (std::vector<NodeId>{1, 4, 9}));
}

TEST(NodeSet, ClearEmpties) {
  NodeSet s(8);
  s.insert(1);
  s.insert(2);
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(NodeSet, MergeUnions) {
  NodeSet a(8), b(8);
  a.insert(1);
  b.insert(2);
  b.insert(1);
  a.merge(b);
  EXPECT_EQ(a.members(), (std::vector<NodeId>{1, 2}));
}

TEST(NodeSet, EqualityComparesContents) {
  NodeSet a(8), b(8);
  a.insert(3);
  EXPECT_NE(a, b);
  b.insert(3);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace dsm
