#include "common/vclock.hpp"

#include <gtest/gtest.h>

namespace dsm {
namespace {

TEST(VectorClock, StartsAtZero) {
  VectorClock vc(4);
  for (NodeId n = 0; n < 4; ++n) EXPECT_EQ(vc[n], 0u);
}

TEST(VectorClock, TickAdvancesOwnComponent) {
  VectorClock vc(3);
  vc.tick(1);
  vc.tick(1);
  EXPECT_EQ(vc[0], 0u);
  EXPECT_EQ(vc[1], 2u);
}

TEST(VectorClock, MergeTakesComponentwiseMax) {
  VectorClock a(3), b(3);
  a.set(0, 5);
  a.set(1, 1);
  b.set(1, 4);
  b.set(2, 2);
  a.merge(b);
  EXPECT_EQ(a[0], 5u);
  EXPECT_EQ(a[1], 4u);
  EXPECT_EQ(a[2], 2u);
}

TEST(VectorClock, DominatesReflexive) {
  VectorClock a(2);
  a.set(0, 3);
  EXPECT_TRUE(a.dominates(a));
}

TEST(VectorClock, DominatesPartialOrder) {
  VectorClock lo(2), hi(2), mixed(2);
  hi.set(0, 2);
  hi.set(1, 2);
  mixed.set(0, 3);
  EXPECT_TRUE(hi.dominates(lo));
  EXPECT_FALSE(lo.dominates(hi));
  // Concurrent: neither dominates.
  EXPECT_FALSE(hi.dominates(mixed));
  EXPECT_FALSE(mixed.dominates(hi));
}

TEST(VectorClock, CoversChecksSingleComponent) {
  VectorClock vc(2);
  vc.set(1, 7);
  EXPECT_TRUE(vc.covers(1, 7));
  EXPECT_TRUE(vc.covers(1, 1));
  EXPECT_FALSE(vc.covers(1, 8));
  EXPECT_FALSE(vc.covers(0, 1));
}

TEST(VectorClock, MergeIsIdempotent) {
  VectorClock a(2), b(2);
  a.set(0, 2);
  b.set(1, 3);
  a.merge(b);
  const VectorClock once = a;
  a.merge(b);
  EXPECT_EQ(a, once);
}

TEST(VectorClock, ToStringIsReadable) {
  VectorClock vc(3);
  vc.set(1, 9);
  EXPECT_EQ(vc.to_string(), "[0,9,0]");
}

}  // namespace
}  // namespace dsm
